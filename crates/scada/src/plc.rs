//! Programmable logic controllers.
//!
//! A [`Plc`] owns a register/coil process image, executes a small
//! instruction-list control program once per scan cycle, and serves
//! fieldbus requests against its image. The `DownloadLogic` function can
//! replace the program at runtime — legitimate for engineering
//! workstations, and exactly the path a Stuxnet-like payload abuses.

use crate::components::PlcFirmware;
use crate::error::ScadaError;
use crate::protocol::frame::{ExceptionCode, FunctionCode, Request, Response};
use serde::{Deserialize, Serialize};

/// Size of each register bank.
pub const REGISTER_SPACE: u16 = 1024;
/// Size of the coil bank.
pub const COIL_SPACE: u16 = 256;
/// Instructions allowed per scan before the watchdog trips.
pub const SCAN_BUDGET: u32 = 10_000;

/// One instruction of the PLC's instruction-list (IL) language.
///
/// The accumulator-based IL mirrors IEC 61131-3 "IL" in miniature: load,
/// arithmetic/compare against operands, conditional store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Load an input register into the accumulator.
    LoadInput(u16),
    /// Load a holding register into the accumulator.
    LoadHolding(u16),
    /// Load an immediate value.
    LoadImm(i32),
    /// Add a holding register to the accumulator.
    AddHolding(u16),
    /// Subtract a holding register from the accumulator.
    SubHolding(u16),
    /// Multiply the accumulator by an immediate (saturating).
    MulImm(i32),
    /// Divide the accumulator by an immediate (non-zero).
    DivImm(i32),
    /// Accumulator := max(accumulator, immediate).
    ClampMin(i32),
    /// Accumulator := min(accumulator, immediate).
    ClampMax(i32),
    /// Compare: accumulator := 1 if accumulator > holding\[addr\] else 0.
    GtHolding(u16),
    /// Compare: accumulator := 1 if accumulator < holding\[addr\] else 0.
    LtHolding(u16),
    /// Store the accumulator into a holding register (clamped to u16).
    StoreHolding(u16),
    /// Set a coil from the accumulator (non-zero = on).
    StoreCoil(u16),
    /// Skip the next instruction if the accumulator is zero.
    SkipIfZero,
    /// Unconditional relative jump backwards is disallowed; only forward
    /// skip exists, so every program terminates within its length.
    Nop,
}

/// A validated PLC program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Program {
    instructions: Vec<Instr>,
}

impl Program {
    /// Creates a program after static validation.
    ///
    /// # Errors
    ///
    /// Returns [`ScadaError::BadProgram`] when an instruction addresses a
    /// register/coil outside the process image or divides by zero.
    pub fn new(instructions: Vec<Instr>) -> Result<Self, ScadaError> {
        for ins in &instructions {
            let ok = match *ins {
                Instr::LoadInput(a)
                | Instr::LoadHolding(a)
                | Instr::AddHolding(a)
                | Instr::SubHolding(a)
                | Instr::GtHolding(a)
                | Instr::LtHolding(a)
                | Instr::StoreHolding(a) => a < REGISTER_SPACE,
                Instr::StoreCoil(a) => a < COIL_SPACE,
                Instr::DivImm(v) => v != 0,
                _ => true,
            };
            if !ok {
                return Err(ScadaError::BadProgram {
                    what: "operand out of range",
                });
            }
        }
        Ok(Program { instructions })
    }

    /// The instruction count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Serializes the program to a logic image (for `DownloadLogic`).
    #[must_use]
    pub fn to_image(&self) -> Vec<u8> {
        serde_json::to_vec(&self.instructions).expect("instruction serialization is infallible")
    }

    /// Parses a logic image back into a program.
    ///
    /// # Errors
    ///
    /// Returns [`ScadaError::BadProgram`] for unparseable or invalid
    /// images.
    pub fn from_image(image: &[u8]) -> Result<Self, ScadaError> {
        let instructions: Vec<Instr> =
            serde_json::from_slice(image).map_err(|_| ScadaError::BadProgram {
                what: "unparseable logic image",
            })?;
        Program::new(instructions)
    }
}

/// A programmable logic controller with its process image.
#[derive(Debug, Clone)]
pub struct Plc {
    /// Firmware family (drives exploitability in the attack models).
    firmware: PlcFirmware,
    /// Fieldbus unit identifier.
    unit_id: u8,
    holding: Vec<u16>,
    input: Vec<u16>,
    coils: Vec<bool>,
    program: Program,
    scans: u64,
    /// Set when a logic download replaced the original program.
    logic_tampered: bool,
}

impl Plc {
    /// Creates a PLC with zeroed image and an empty program.
    #[must_use]
    pub fn new(unit_id: u8, firmware: PlcFirmware) -> Self {
        Plc {
            firmware,
            unit_id,
            holding: vec![0; REGISTER_SPACE as usize],
            input: vec![0; REGISTER_SPACE as usize],
            coils: vec![false; COIL_SPACE as usize],
            program: Program::default(),
            scans: 0,
            logic_tampered: false,
        }
    }

    /// The PLC's firmware family.
    #[must_use]
    pub fn firmware(&self) -> PlcFirmware {
        self.firmware
    }

    /// The fieldbus unit id.
    #[must_use]
    pub fn unit_id(&self) -> u8 {
        self.unit_id
    }

    /// Installs the *legitimate* control program (engineering download).
    pub fn install_program(&mut self, program: Program) {
        self.program = program;
        self.logic_tampered = false;
    }

    /// Whether the running logic was replaced since the last legitimate
    /// install.
    #[must_use]
    pub fn is_logic_tampered(&self) -> bool {
        self.logic_tampered
    }

    /// Number of completed scan cycles.
    #[must_use]
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// Reads a holding register.
    ///
    /// # Errors
    ///
    /// Returns [`ScadaError::AddressOutOfRange`] for addresses outside the
    /// image.
    pub fn holding(&self, address: u16) -> Result<u16, ScadaError> {
        self.holding
            .get(address as usize)
            .copied()
            .ok_or(ScadaError::AddressOutOfRange { address })
    }

    /// Writes a holding register.
    ///
    /// # Errors
    ///
    /// Returns [`ScadaError::AddressOutOfRange`] for addresses outside the
    /// image.
    pub fn set_holding(&mut self, address: u16, value: u16) -> Result<(), ScadaError> {
        let slot = self
            .holding
            .get_mut(address as usize)
            .ok_or(ScadaError::AddressOutOfRange { address })?;
        *slot = value;
        Ok(())
    }

    /// Writes an input register (done by attached sensors).
    ///
    /// # Errors
    ///
    /// Returns [`ScadaError::AddressOutOfRange`] for addresses outside the
    /// image.
    pub fn set_input(&mut self, address: u16, value: u16) -> Result<(), ScadaError> {
        let slot = self
            .input
            .get_mut(address as usize)
            .ok_or(ScadaError::AddressOutOfRange { address })?;
        *slot = value;
        Ok(())
    }

    /// Reads a coil.
    ///
    /// # Errors
    ///
    /// Returns [`ScadaError::AddressOutOfRange`] for addresses outside the
    /// image.
    pub fn coil(&self, address: u16) -> Result<bool, ScadaError> {
        self.coils
            .get(address as usize)
            .copied()
            .ok_or(ScadaError::AddressOutOfRange { address })
    }

    /// Executes one scan cycle of the installed program.
    ///
    /// # Errors
    ///
    /// Returns [`ScadaError::ScanBudgetExceeded`] if the program runs past
    /// the instruction budget (cannot happen for validated programs, which
    /// have no backward jumps, but kept as a defense-in-depth watchdog).
    pub fn scan(&mut self) -> Result<(), ScadaError> {
        let mut acc: i32 = 0;
        let mut skip = false;
        let mut executed = 0u32;
        for ins in self.program.instructions.clone() {
            executed += 1;
            if executed > SCAN_BUDGET {
                return Err(ScadaError::ScanBudgetExceeded);
            }
            if skip {
                skip = false;
                continue;
            }
            match ins {
                Instr::LoadInput(a) => acc = i32::from(self.input[a as usize]),
                Instr::LoadHolding(a) => acc = i32::from(self.holding[a as usize]),
                Instr::LoadImm(v) => acc = v,
                Instr::AddHolding(a) => {
                    acc = acc.saturating_add(i32::from(self.holding[a as usize]));
                }
                Instr::SubHolding(a) => {
                    acc = acc.saturating_sub(i32::from(self.holding[a as usize]));
                }
                Instr::MulImm(v) => acc = acc.saturating_mul(v),
                Instr::DivImm(v) => acc /= v,
                Instr::ClampMin(v) => acc = acc.max(v),
                Instr::ClampMax(v) => acc = acc.min(v),
                Instr::GtHolding(a) => {
                    acc = i32::from(acc > i32::from(self.holding[a as usize]));
                }
                Instr::LtHolding(a) => {
                    acc = i32::from(acc < i32::from(self.holding[a as usize]));
                }
                Instr::StoreHolding(a) => {
                    self.holding[a as usize] = acc.clamp(0, i32::from(u16::MAX)) as u16;
                }
                Instr::StoreCoil(a) => self.coils[a as usize] = acc != 0,
                Instr::SkipIfZero => skip = acc == 0,
                Instr::Nop => {}
            }
        }
        self.scans += 1;
        Ok(())
    }

    /// Serves one fieldbus request against the process image.
    ///
    /// Never returns an error: protocol-level failures become
    /// [`Response::Exception`] values, as a real device would answer.
    pub fn serve(&mut self, request: &Request) -> Response {
        match request {
            Request::ReadCoils { address, count } => {
                match self.range_ok(*address, *count, COIL_SPACE) {
                    Ok(()) => Response::Coils(
                        (0..*count)
                            .map(|i| self.coils[(address + i) as usize])
                            .collect(),
                    ),
                    Err(code) => Response::Exception {
                        function: FunctionCode::ReadCoils,
                        code,
                    },
                }
            }
            Request::ReadHoldingRegisters { address, count } => {
                match self.range_ok(*address, *count, REGISTER_SPACE) {
                    Ok(()) => Response::Registers(
                        (0..*count)
                            .map(|i| self.holding[(address + i) as usize])
                            .collect(),
                    ),
                    Err(code) => Response::Exception {
                        function: FunctionCode::ReadHoldingRegisters,
                        code,
                    },
                }
            }
            Request::ReadInputRegisters { address, count } => {
                match self.range_ok(*address, *count, REGISTER_SPACE) {
                    Ok(()) => Response::Registers(
                        (0..*count)
                            .map(|i| self.input[(address + i) as usize])
                            .collect(),
                    ),
                    Err(code) => Response::Exception {
                        function: FunctionCode::ReadInputRegisters,
                        code,
                    },
                }
            }
            Request::WriteSingleCoil { address, value } => {
                if *address < COIL_SPACE {
                    self.coils[*address as usize] = *value;
                    Response::WriteAck {
                        address: *address,
                        count: 1,
                    }
                } else {
                    Response::Exception {
                        function: FunctionCode::WriteSingleCoil,
                        code: ExceptionCode::IllegalDataAddress,
                    }
                }
            }
            Request::WriteSingleRegister { address, value } => {
                if *address < REGISTER_SPACE {
                    self.holding[*address as usize] = *value;
                    Response::WriteAck {
                        address: *address,
                        count: 1,
                    }
                } else {
                    Response::Exception {
                        function: FunctionCode::WriteSingleRegister,
                        code: ExceptionCode::IllegalDataAddress,
                    }
                }
            }
            Request::WriteMultipleRegisters { address, values } => {
                match self.range_ok(*address, values.len() as u16, REGISTER_SPACE) {
                    Ok(()) => {
                        for (i, v) in values.iter().enumerate() {
                            self.holding[*address as usize + i] = *v;
                        }
                        Response::WriteAck {
                            address: *address,
                            count: values.len() as u16,
                        }
                    }
                    Err(code) => Response::Exception {
                        function: FunctionCode::WriteMultipleRegisters,
                        code,
                    },
                }
            }
            Request::DownloadLogic { image } => match Program::from_image(image) {
                Ok(program) => {
                    // Signed firmware refuses unsigned downloads entirely;
                    // the attack models account for this via the firmware
                    // resilience score, but the device-level behaviour is
                    // mirrored here for the verified variant.
                    if self.firmware == PlcFirmware::Verified {
                        Response::Exception {
                            function: FunctionCode::DownloadLogic,
                            code: ExceptionCode::AccessDenied,
                        }
                    } else {
                        self.program = program;
                        self.logic_tampered = true;
                        Response::LogicAccepted
                    }
                }
                Err(_) => Response::Exception {
                    function: FunctionCode::DownloadLogic,
                    code: ExceptionCode::IllegalDataValue,
                },
            },
        }
    }

    fn range_ok(&self, address: u16, count: u16, space: u16) -> Result<(), ExceptionCode> {
        if count == 0 {
            return Err(ExceptionCode::IllegalDataValue);
        }
        let end = u32::from(address) + u32::from(count);
        if end > u32::from(space) {
            Err(ExceptionCode::IllegalDataAddress)
        } else {
            Ok(())
        }
    }
}

/// Builds the standard cooling-control program used by the SCoPE model.
///
/// Inputs/outputs (registers within the process image):
///
/// * input `0` — measured temperature, in tenths of °C;
/// * holding `0` — setpoint, tenths of °C;
/// * holding `1` — proportional gain (fan % per tenth-degree of error);
/// * holding `2` — computed fan command, 0..=100 (%);
/// * coil `0` — alarm: temperature above setpoint + band.
///
/// The control law is proportional with clamping:
/// `fan = clamp(gain * (T - setpoint), 0, 100)`.
///
/// # Panics
///
/// Never panics: the program is statically valid by construction.
#[must_use]
pub fn cooling_control_program() -> Program {
    Program::new(vec![
        // error = T - setpoint
        Instr::LoadInput(0),
        Instr::SubHolding(0),
        // fan = error * gain … using gain as a small immediate-free trick:
        // multiply by holding[1] is not available, so approximate with a
        // fixed gain of 2 then clamp; holding[1] documents the gain.
        Instr::MulImm(2),
        Instr::ClampMin(0),
        Instr::ClampMax(100),
        Instr::StoreHolding(2),
        // alarm coil: T > setpoint + 50 (5.0 °C band) → holding[3] holds
        // the alarm threshold written at configuration time.
        Instr::LoadInput(0),
        Instr::GtHolding(3),
        Instr::StoreCoil(0),
    ])
    .expect("static program is valid")
}

/// Builds a Stuxnet-style *malicious* logic image: drives the fan command
/// to zero regardless of temperature while keeping the alarm coil off —
/// the "send malicious control signals / fool the SCADA system" payload.
#[must_use]
pub fn sabotage_program() -> Program {
    Program::new(vec![
        Instr::LoadImm(0),
        Instr::StoreHolding(2), // fan off
        Instr::LoadImm(0),
        Instr::StoreCoil(0), // suppress alarm
    ])
    .expect("static program is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plc() -> Plc {
        Plc::new(1, PlcFirmware::VendorAStock)
    }

    #[test]
    fn image_read_write_round_trip() {
        let mut p = plc();
        p.set_holding(5, 1234).unwrap();
        assert_eq!(p.holding(5).unwrap(), 1234);
        p.set_input(7, 42).unwrap();
        assert!(p.holding(REGISTER_SPACE).is_err());
        assert!(p.set_holding(REGISTER_SPACE, 0).is_err());
        assert!(p.coil(COIL_SPACE).is_err());
    }

    #[test]
    fn cooling_program_proportional_response() {
        let mut p = plc();
        p.install_program(cooling_control_program());
        p.set_holding(0, 250).unwrap(); // setpoint 25.0 °C
        p.set_holding(3, 300).unwrap(); // alarm at 30.0 °C
                                        // 27.0 °C → error 20 → fan 40%.
        p.set_input(0, 270).unwrap();
        p.scan().unwrap();
        assert_eq!(p.holding(2).unwrap(), 40);
        assert!(!p.coil(0).unwrap());
        // 24.0 °C → error negative → fan clamped at 0.
        p.set_input(0, 240).unwrap();
        p.scan().unwrap();
        assert_eq!(p.holding(2).unwrap(), 0);
        // 80.0 °C → clamped at 100, alarm raised.
        p.set_input(0, 800).unwrap();
        p.scan().unwrap();
        assert_eq!(p.holding(2).unwrap(), 100);
        assert!(p.coil(0).unwrap());
        assert_eq!(p.scans(), 3);
    }

    #[test]
    fn sabotage_program_suppresses_cooling_and_alarm() {
        let mut p = plc();
        p.install_program(sabotage_program());
        p.set_input(0, 900).unwrap(); // 90 °C!
        p.scan().unwrap();
        assert_eq!(p.holding(2).unwrap(), 0, "fan forced off");
        assert!(!p.coil(0).unwrap(), "alarm suppressed");
    }

    #[test]
    fn serve_read_write_requests() {
        let mut p = plc();
        let w = p.serve(&Request::WriteSingleRegister {
            address: 10,
            value: 777,
        });
        assert_eq!(
            w,
            Response::WriteAck {
                address: 10,
                count: 1
            }
        );
        let r = p.serve(&Request::ReadHoldingRegisters {
            address: 10,
            count: 2,
        });
        assert_eq!(r, Response::Registers(vec![777, 0]));
        let c = p.serve(&Request::WriteSingleCoil {
            address: 3,
            value: true,
        });
        assert!(!c.is_exception());
        let rc = p.serve(&Request::ReadCoils {
            address: 0,
            count: 8,
        });
        assert_eq!(
            rc,
            Response::Coils(vec![false, false, false, true, false, false, false, false])
        );
    }

    #[test]
    fn serve_rejects_out_of_range() {
        let mut p = plc();
        let r = p.serve(&Request::ReadHoldingRegisters {
            address: REGISTER_SPACE - 1,
            count: 2,
        });
        assert!(r.is_exception());
        let w = p.serve(&Request::WriteSingleRegister {
            address: REGISTER_SPACE,
            value: 0,
        });
        assert!(w.is_exception());
    }

    #[test]
    fn logic_download_replaces_program_and_flags_tamper() {
        let mut p = plc();
        p.install_program(cooling_control_program());
        assert!(!p.is_logic_tampered());
        let image = sabotage_program().to_image();
        let resp = p.serve(&Request::DownloadLogic { image });
        assert_eq!(resp, Response::LogicAccepted);
        assert!(p.is_logic_tampered());
        // The malicious logic now runs.
        p.set_input(0, 900).unwrap();
        p.scan().unwrap();
        assert_eq!(p.holding(2).unwrap(), 0);
    }

    #[test]
    fn verified_firmware_refuses_download() {
        let mut p = Plc::new(1, PlcFirmware::Verified);
        p.install_program(cooling_control_program());
        let image = sabotage_program().to_image();
        let resp = p.serve(&Request::DownloadLogic { image });
        assert_eq!(
            resp,
            Response::Exception {
                function: FunctionCode::DownloadLogic,
                code: ExceptionCode::AccessDenied
            }
        );
        assert!(!p.is_logic_tampered());
    }

    #[test]
    fn garbage_logic_image_rejected() {
        let mut p = plc();
        let resp = p.serve(&Request::DownloadLogic {
            image: vec![0xFF, 0x00, 0x13],
        });
        assert!(resp.is_exception());
    }

    #[test]
    fn program_validation() {
        assert!(Program::new(vec![Instr::LoadHolding(REGISTER_SPACE)]).is_err());
        assert!(Program::new(vec![Instr::StoreCoil(COIL_SPACE)]).is_err());
        assert!(Program::new(vec![Instr::DivImm(0)]).is_err());
        assert!(Program::new(vec![Instr::Nop]).is_ok());
    }

    #[test]
    fn program_image_round_trip() {
        let p = cooling_control_program();
        let image = p.to_image();
        let back = Program::from_image(&image).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn skip_if_zero_semantics() {
        let mut p = plc();
        p.install_program(
            Program::new(vec![
                Instr::LoadImm(0),
                Instr::SkipIfZero,
                Instr::LoadImm(99), // skipped
                Instr::StoreHolding(0),
            ])
            .unwrap(),
        );
        p.scan().unwrap();
        assert_eq!(p.holding(0).unwrap(), 0);
    }
}
