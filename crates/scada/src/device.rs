//! Field devices: sensors and actuators.
//!
//! Devices bridge the physical plant model ([`crate::physics`]) and the
//! control system: sensors quantize plant variables into PLC input
//! registers; actuators turn PLC commands into plant inputs. Each device
//! carries an operational state so attacks can impair or spoof it.

use crate::components::SensorVendor;
use diversify_des::RngStream;
use serde::{Deserialize, Serialize};

/// Operational condition of a field device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DeviceState {
    /// Operating normally.
    #[default]
    Nominal,
    /// Degraded: readings are noisy / actuation is sluggish.
    Degraded,
    /// Compromised: under attacker control (readings may be spoofed).
    Compromised,
    /// Physically destroyed (the device-impairment attack goal).
    Destroyed,
}

/// The physical quantity a sensor measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeasuredQuantity {
    /// Air or water temperature, °C.
    Temperature,
    /// Coolant flow, m³/h.
    Flow,
    /// Loop pressure, bar.
    Pressure,
}

/// A process sensor.
///
/// Readings are quantized to tenths (matching the PLC register convention)
/// and carry vendor-dependent Gaussian noise. A compromised sensor returns
/// the attacker-supplied spoof value instead of the plant value — the
/// "emulating regular monitoring signals" behaviour of Stuxnet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sensor {
    /// Vendor/family (drives spoof-detection probability).
    pub vendor: SensorVendor,
    /// What the sensor measures.
    pub quantity: MeasuredQuantity,
    /// Operational state.
    pub state: DeviceState,
    /// Noise standard deviation in engineering units.
    pub noise_sd: f64,
    /// Spoof value injected when compromised (engineering units).
    pub spoof_value: Option<f64>,
    last_reading: f64,
}

impl Sensor {
    /// Creates a nominal sensor.
    #[must_use]
    pub fn new(vendor: SensorVendor, quantity: MeasuredQuantity, noise_sd: f64) -> Self {
        Sensor {
            vendor,
            quantity,
            state: DeviceState::Nominal,
            noise_sd,
            spoof_value: None,
            last_reading: 0.0,
        }
    }

    /// Samples a reading of `true_value`, applying state-dependent
    /// behaviour, and returns it in engineering units.
    pub fn read(&mut self, true_value: f64, rng: &mut RngStream) -> f64 {
        let value = match self.state {
            DeviceState::Nominal => true_value + rng.normal(0.0, self.noise_sd),
            DeviceState::Degraded => true_value + rng.normal(0.0, self.noise_sd * 5.0),
            DeviceState::Compromised => self.spoof_value.unwrap_or(true_value),
            DeviceState::Destroyed => 0.0,
        };
        self.last_reading = value;
        value
    }

    /// The most recent reading.
    #[must_use]
    pub fn last_reading(&self) -> f64 {
        self.last_reading
    }

    /// Converts an engineering-unit reading to the PLC register encoding
    /// (tenths, clamped to `u16`).
    #[must_use]
    pub fn to_register(value: f64) -> u16 {
        (value * 10.0).round().clamp(0.0, f64::from(u16::MAX)) as u16
    }

    /// Marks the sensor compromised with a spoofed value.
    pub fn compromise(&mut self, spoof_value: f64) {
        self.state = DeviceState::Compromised;
        self.spoof_value = Some(spoof_value);
    }
}

/// The kind of actuator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActuatorKind {
    /// CRAC fan: command 0..=100 % drives airflow.
    Fan,
    /// Chilled-water valve: command 0..=100 % opening.
    Valve,
    /// Coolant pump: command 0..=100 % speed.
    Pump,
}

/// An actuator with first-order response dynamics and wear accumulation.
///
/// The *device impairment* stage of a Stuxnet-like attack destroys
/// equipment by cycling it outside its safe envelope; the wear model makes
/// that concrete: commanding a slew faster than `safe_slew` accumulates
/// damage, and past `wear_limit` the device fails permanently.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Actuator {
    /// Actuator kind.
    pub kind: ActuatorKind,
    /// Operational state.
    pub state: DeviceState,
    /// Current physical position/speed, 0..=100 (%).
    position: f64,
    /// First-order time constant, seconds.
    pub tau: f64,
    /// Highest commanded slew (%/s) that causes no wear.
    pub safe_slew: f64,
    /// Accumulated wear in arbitrary units.
    wear: f64,
    /// Wear at which the device is destroyed.
    pub wear_limit: f64,
}

impl Actuator {
    /// Creates a nominal actuator at position 0.
    #[must_use]
    pub fn new(kind: ActuatorKind, tau: f64, safe_slew: f64, wear_limit: f64) -> Self {
        Actuator {
            kind,
            state: DeviceState::Nominal,
            position: 0.0,
            tau,
            safe_slew,
            wear: 0.0,
            wear_limit,
        }
    }

    /// Current physical position (0..=100).
    #[must_use]
    pub fn position(&self) -> f64 {
        self.position
    }

    /// Accumulated wear.
    #[must_use]
    pub fn wear(&self) -> f64 {
        self.wear
    }

    /// Advances the actuator by `dt` seconds toward `command` (0..=100).
    ///
    /// Returns the new position. A destroyed actuator stays at zero.
    pub fn step(&mut self, command: f64, dt: f64) -> f64 {
        if self.state == DeviceState::Destroyed {
            self.position = 0.0;
            return 0.0;
        }
        let command = command.clamp(0.0, 100.0);
        let tau = match self.state {
            DeviceState::Degraded => self.tau * 3.0,
            _ => self.tau,
        };
        let previous = self.position;
        // First-order lag: dx/dt = (u - x)/τ.
        let alpha = if tau > 0.0 {
            1.0 - (-dt / tau).exp()
        } else {
            1.0
        };
        self.position += alpha * (command - self.position);
        // Wear accrues when the realized slew exceeds the safe envelope.
        let slew = ((self.position - previous) / dt.max(1e-9)).abs();
        if slew > self.safe_slew {
            self.wear += (slew - self.safe_slew) * dt;
            if self.wear >= self.wear_limit {
                self.state = DeviceState::Destroyed;
                self.position = 0.0;
            }
        }
        self.position
    }

    /// Whether the actuator has been destroyed.
    #[must_use]
    pub fn is_destroyed(&self) -> bool {
        self.state == DeviceState::Destroyed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_des::StreamId;

    fn rng() -> RngStream {
        RngStream::new(3, StreamId(0))
    }

    #[test]
    fn nominal_sensor_tracks_truth() {
        let mut s = Sensor::new(SensorVendor::Commodity, MeasuredQuantity::Temperature, 0.1);
        let mut r = rng();
        let n = 2000;
        let mean: f64 = (0..n).map(|_| s.read(25.0, &mut r)).sum::<f64>() / f64::from(n);
        assert!((mean - 25.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn degraded_sensor_is_noisier() {
        let mut nominal = Sensor::new(SensorVendor::Commodity, MeasuredQuantity::Flow, 0.5);
        let mut degraded = nominal.clone();
        degraded.state = DeviceState::Degraded;
        let mut r1 = rng();
        let mut r2 = rng();
        let sd = |s: &mut Sensor, r: &mut RngStream| {
            let xs: Vec<f64> = (0..2000).map(|_| s.read(10.0, r)).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
        };
        let sd_nom = sd(&mut nominal, &mut r1);
        let sd_deg = sd(&mut degraded, &mut r2);
        assert!(sd_deg > 3.0 * sd_nom, "nominal {sd_nom} degraded {sd_deg}");
    }

    #[test]
    fn compromised_sensor_returns_spoof() {
        let mut s = Sensor::new(
            SensorVendor::Authenticated,
            MeasuredQuantity::Temperature,
            0.1,
        );
        s.compromise(22.0);
        let mut r = rng();
        // Plant is at 90 °C but the sensor reports the spoofed 22 °C.
        assert_eq!(s.read(90.0, &mut r), 22.0);
        assert_eq!(s.last_reading(), 22.0);
    }

    #[test]
    fn destroyed_sensor_reads_zero() {
        let mut s = Sensor::new(SensorVendor::Commodity, MeasuredQuantity::Pressure, 0.1);
        s.state = DeviceState::Destroyed;
        assert_eq!(s.read(5.0, &mut rng()), 0.0);
    }

    #[test]
    fn register_encoding() {
        assert_eq!(Sensor::to_register(25.04), 250);
        assert_eq!(Sensor::to_register(25.06), 251);
        assert_eq!(Sensor::to_register(-4.0), 0);
        assert_eq!(Sensor::to_register(1e9), u16::MAX);
    }

    #[test]
    fn actuator_first_order_response() {
        let mut a = Actuator::new(ActuatorKind::Fan, 10.0, 1e9, 1e9);
        // Step command 100, after one time constant ≈ 63.2 %.
        let mut t = 0.0;
        while t < 10.0 {
            a.step(100.0, 0.1);
            t += 0.1;
        }
        assert!((a.position() - 63.2).abs() < 1.0, "pos {}", a.position());
        // After 5 τ ≈ 99 %.
        while t < 50.0 {
            a.step(100.0, 0.1);
            t += 0.1;
        }
        assert!(a.position() > 99.0);
    }

    #[test]
    fn gentle_commands_cause_no_wear() {
        let mut a = Actuator::new(ActuatorKind::Pump, 20.0, 50.0, 10.0);
        for _ in 0..1000 {
            a.step(60.0, 1.0);
        }
        assert_eq!(a.wear(), 0.0);
        assert!(!a.is_destroyed());
    }

    #[test]
    fn violent_cycling_destroys_actuator() {
        // Tiny time constant → near-instant slews far above safe_slew.
        let mut a = Actuator::new(ActuatorKind::Fan, 0.01, 5.0, 50.0);
        let mut cycles = 0;
        for i in 0..10_000 {
            let cmd = if i % 2 == 0 { 100.0 } else { 0.0 };
            a.step(cmd, 1.0);
            cycles += 1;
            if a.is_destroyed() {
                break;
            }
        }
        assert!(a.is_destroyed(), "survived {cycles} violent cycles");
        assert_eq!(a.position(), 0.0);
    }

    #[test]
    fn degraded_actuator_is_slower() {
        let mut nominal = Actuator::new(ActuatorKind::Valve, 10.0, 1e9, 1e9);
        let mut degraded = Actuator::new(ActuatorKind::Valve, 10.0, 1e9, 1e9);
        degraded.state = DeviceState::Degraded;
        for _ in 0..100 {
            nominal.step(100.0, 0.1);
            degraded.step(100.0, 0.1);
        }
        assert!(nominal.position() > degraded.position() + 20.0);
    }
}
