//! The plant network: nodes, zones, links, firewall rules and the graph
//! analyses used by attack propagation and strategic diversity placement.

use crate::components::ComponentProfile;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// Identifies a node within one [`ScadaNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The underlying index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifies a link within one [`ScadaNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId(pub(crate) usize);

/// ISA-95-style security zones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum Zone {
    /// Office IT / corporate network (level 4).
    Corporate,
    /// Supervisory control: HMI, historian, engineering (level 2-3).
    ControlCenter,
    /// Field network: PLCs, RTUs, devices (level 0-1).
    Field,
}

impl Zone {
    /// All zones, outermost first.
    pub const ALL: [Zone; 3] = [Zone::Corporate, Zone::ControlCenter, Zone::Field];
}

/// The functional role of a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// Office workstation (initial infection vector, e.g. via USB).
    OfficeWorkstation,
    /// Operator HMI.
    Hmi,
    /// Process historian / database server.
    Historian,
    /// Engineering workstation holding PLC project files.
    EngineeringWorkstation,
    /// Programmable logic controller.
    Plc,
    /// Field gateway / protocol converter.
    FieldGateway,
}

impl NodeRole {
    /// Whether this role can host the initial infection (removable media,
    /// email, etc. — Stuxnet's entry vectors live in office space).
    #[must_use]
    pub fn is_entry_point(self) -> bool {
        matches!(
            self,
            NodeRole::OfficeWorkstation | NodeRole::EngineeringWorkstation
        )
    }
}

/// One node of the plant network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkNode {
    /// Display name.
    pub name: String,
    /// Functional role.
    pub role: NodeRole,
    /// Security zone.
    pub zone: Zone,
    /// Deployed component variants (the diversity configuration acts
    /// here).
    pub profile: ComponentProfile,
}

/// An undirected communication link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
}

/// The plant network graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScadaNetwork {
    nodes: Vec<NetworkNode>,
    links: Vec<Link>,
    adjacency: Vec<Vec<NodeId>>,
}

impl ScadaNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        ScadaNetwork::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        role: NodeRole,
        zone: Zone,
        profile: ComponentProfile,
    ) -> NodeId {
        self.nodes.push(NetworkNode {
            name: name.into(),
            role,
            zone,
            profile,
        });
        self.adjacency.push(Vec::new());
        NodeId(self.nodes.len() - 1)
    }

    /// Connects two nodes with an undirected link.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or the link is a self-loop.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> LinkId {
        assert!(
            a.0 < self.nodes.len() && b.0 < self.nodes.len(),
            "bad node id"
        );
        assert_ne!(a, b, "self-loops are not allowed");
        self.links.push(Link { a, b });
        self.adjacency[a.0].push(b);
        self.adjacency[b.0].push(a);
        LinkId(self.links.len() - 1)
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &NetworkNode {
        &self.nodes[id.0]
    }

    /// Mutable access to a node (used by diversity placement).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut NetworkNode {
        &mut self.nodes[id.0]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Ids of nodes with a given role.
    #[must_use]
    pub fn nodes_with_role(&self, role: NodeRole) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.node(id).role == role)
            .collect()
    }

    /// Ids of nodes in a given zone.
    #[must_use]
    pub fn nodes_in_zone(&self, zone: Zone) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.node(id).zone == zone)
            .collect()
    }

    /// Neighbors of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.adjacency[id.0]
    }

    /// Whether a hop from `from` to `to` crosses a zone boundary (and is
    /// therefore subject to the target's firewall policy).
    #[must_use]
    pub fn crosses_zone(&self, from: NodeId, to: NodeId) -> bool {
        self.node(from).zone != self.node(to).zone
    }

    /// Nodes reachable from `start` (ignoring firewalls) — basic
    /// connectivity.
    #[must_use]
    pub fn reachable(&self, start: NodeId) -> HashSet<NodeId> {
        let mut seen = HashSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some(n) = queue.pop_front() {
            for &next in self.neighbors(n) {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        seen
    }

    /// Betweenness-like centrality: for every node, the number of
    /// shortest-path trees (one BFS per source) in which it appears as an
    /// interior vertex. Cheap (O(V·E)) and sufficient to rank choke
    /// points for *strategic* diversity placement.
    #[must_use]
    pub fn centrality(&self) -> Vec<(NodeId, f64)> {
        let n = self.nodes.len();
        let mut score = vec![0.0f64; n];
        for src in 0..n {
            // BFS parents.
            let mut dist = vec![usize::MAX; n];
            let mut parent = vec![None; n];
            dist[src] = 0;
            let mut q = VecDeque::from([src]);
            while let Some(u) = q.pop_front() {
                for &NodeId(v) in &self.adjacency[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        parent[v] = Some(u);
                        q.push_back(v);
                    }
                }
            }
            // Walk each destination's path and credit interior vertices.
            for dst in 0..n {
                if dst == src || dist[dst] == usize::MAX {
                    continue;
                }
                let mut cur = parent[dst];
                while let Some(p) = cur {
                    if p != src {
                        score[p] += 1.0;
                    }
                    cur = parent[p];
                }
            }
        }
        let mut out: Vec<(NodeId, f64)> = (0..n).map(|i| (NodeId(i), score[i])).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
        out
    }

    /// Shortest hop distance between two nodes, if connected.
    #[must_use]
    pub fn hop_distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.nodes.len()];
        dist[from.0] = 0;
        let mut q = VecDeque::from([from]);
        while let Some(u) = q.pop_front() {
            for &v in self.neighbors(u) {
                if dist[v.0] == usize::MAX {
                    dist[v.0] = dist[u.0] + 1;
                    if v == to {
                        return Some(dist[v.0]);
                    }
                    q.push_back(v);
                }
            }
        }
        None
    }
}

impl fmt::Display for ScadaNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "network: {} nodes, {} links",
            self.node_count(),
            self.link_count()
        )?;
        for id in self.node_ids() {
            let n = self.node(id);
            writeln!(
                f,
                "  [{:>3}] {:<24} {:?} / {:?}",
                id.0, n.name, n.role, n.zone
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ComponentProfile {
        ComponentProfile::default()
    }

    /// corp — hmi — plc1, plc2 (star around hmi).
    fn small_net() -> (ScadaNetwork, NodeId, NodeId, NodeId, NodeId) {
        let mut net = ScadaNetwork::new();
        let corp = net.add_node(
            "corp",
            NodeRole::OfficeWorkstation,
            Zone::Corporate,
            profile(),
        );
        let hmi = net.add_node("hmi", NodeRole::Hmi, Zone::ControlCenter, profile());
        let plc1 = net.add_node("plc1", NodeRole::Plc, Zone::Field, profile());
        let plc2 = net.add_node("plc2", NodeRole::Plc, Zone::Field, profile());
        net.connect(corp, hmi);
        net.connect(hmi, plc1);
        net.connect(hmi, plc2);
        (net, corp, hmi, plc1, plc2)
    }

    #[test]
    fn construction_and_lookup() {
        let (net, corp, hmi, plc1, _) = small_net();
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.link_count(), 3);
        assert_eq!(net.node(corp).name, "corp");
        assert_eq!(net.nodes_with_role(NodeRole::Plc).len(), 2);
        assert_eq!(net.nodes_in_zone(Zone::ControlCenter), vec![hmi]);
        assert_eq!(net.neighbors(hmi).len(), 3);
        assert!(net.crosses_zone(corp, hmi));
        assert!(!net.crosses_zone(plc1, plc1));
    }

    #[test]
    fn reachability_spans_connected_graph() {
        let (net, corp, ..) = small_net();
        assert_eq!(net.reachable(corp).len(), 4);
    }

    #[test]
    fn disconnected_node_unreachable() {
        let (mut net, corp, ..) = small_net();
        let island = net.add_node("island", NodeRole::Plc, Zone::Field, profile());
        assert!(!net.reachable(corp).contains(&island));
        assert_eq!(net.hop_distance(corp, island), None);
    }

    #[test]
    fn hop_distances() {
        let (net, corp, hmi, plc1, plc2) = small_net();
        assert_eq!(net.hop_distance(corp, corp), Some(0));
        assert_eq!(net.hop_distance(corp, hmi), Some(1));
        assert_eq!(net.hop_distance(corp, plc1), Some(2));
        assert_eq!(net.hop_distance(plc1, plc2), Some(2));
    }

    #[test]
    fn centrality_ranks_choke_point_first() {
        let (net, _, hmi, ..) = small_net();
        let ranking = net.centrality();
        assert_eq!(ranking[0].0, hmi, "hub should be most central");
        assert!(ranking[0].1 > 0.0);
    }

    #[test]
    fn centrality_zero_for_leaves() {
        let (net, corp, ..) = small_net();
        let ranking = net.centrality();
        let corp_score = ranking.iter().find(|(id, _)| *id == corp).unwrap().1;
        assert_eq!(corp_score, 0.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let (mut net, corp, ..) = small_net();
        net.connect(corp, corp);
    }

    #[test]
    fn entry_point_roles() {
        assert!(NodeRole::OfficeWorkstation.is_entry_point());
        assert!(NodeRole::EngineeringWorkstation.is_entry_point());
        assert!(!NodeRole::Plc.is_entry_point());
        assert!(!NodeRole::Historian.is_entry_point());
    }

    #[test]
    fn display_lists_nodes() {
        let (net, ..) = small_net();
        let s = net.to_string();
        assert!(s.contains("4 nodes"));
        assert!(s.contains("plc1"));
    }

    #[test]
    fn node_mut_updates_profile() {
        let (mut net, corp, ..) = small_net();
        net.node_mut(corp).profile = ComponentProfile::hardened();
        assert!(net.node(corp).profile.resilience() > 0.5);
    }
}
