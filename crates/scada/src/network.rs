//! The plant network: nodes, zones, links, firewall rules and the graph
//! analyses used by attack propagation and strategic diversity placement.
//!
//! # Representation
//!
//! Node state is stored **structure-of-arrays** (names, roles, zones and
//! component profiles as parallel vectors), and the link structure is
//! served from a **CSR topology** (a flat neighbor array indexed by
//! per-node offsets) with precomputed role and zone indexes. The CSR
//! view is derived data: it is built lazily on first query after a
//! topology mutation and cached until the next `add_node`/`connect`, so
//! construction stays an append-only edge list while every traversal —
//! campaign propagation, reachability, centrality — runs over two
//! contiguous arrays. Rebuilds cost O(V + E); alternating mutation and
//! query pays that price per alternation, so build the plant first and
//! query after (every generator in this workspace does).
//!
//! Profile rewrites (diversity placement) do **not** invalidate the
//! cache: the topology depends only on nodes and links.

use crate::components::ComponentProfile;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::OnceLock;

/// Identifies a node within one [`ScadaNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The underlying index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a node id from a raw index — for engines that keep
    /// node indexes in their own packed structures (bitsets, counters).
    /// The id is only meaningful for the network whose index space it
    /// came from; out-of-range ids make accessors panic.
    #[must_use]
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }
}

/// Identifies a link within one [`ScadaNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId(pub(crate) usize);

/// ISA-95-style security zones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum Zone {
    /// Office IT / corporate network (level 4).
    Corporate,
    /// Supervisory control: HMI, historian, engineering (level 2-3).
    ControlCenter,
    /// Field network: PLCs, RTUs, devices (level 0-1).
    Field,
}

impl Zone {
    /// All zones, outermost first.
    pub const ALL: [Zone; 3] = [Zone::Corporate, Zone::ControlCenter, Zone::Field];

    /// Position of this zone in [`Zone::ALL`] (the zone-index key).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Zone::Corporate => 0,
            Zone::ControlCenter => 1,
            Zone::Field => 2,
        }
    }
}

/// The functional role of a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// Office workstation (initial infection vector, e.g. via USB).
    OfficeWorkstation,
    /// Operator HMI.
    Hmi,
    /// Process historian / database server.
    Historian,
    /// Engineering workstation holding PLC project files.
    EngineeringWorkstation,
    /// Programmable logic controller.
    Plc,
    /// Field gateway / protocol converter.
    FieldGateway,
}

impl NodeRole {
    /// All roles, in declaration order.
    pub const ALL: [NodeRole; 6] = [
        NodeRole::OfficeWorkstation,
        NodeRole::Hmi,
        NodeRole::Historian,
        NodeRole::EngineeringWorkstation,
        NodeRole::Plc,
        NodeRole::FieldGateway,
    ];

    /// Position of this role in [`NodeRole::ALL`] (the role-index key).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            NodeRole::OfficeWorkstation => 0,
            NodeRole::Hmi => 1,
            NodeRole::Historian => 2,
            NodeRole::EngineeringWorkstation => 3,
            NodeRole::Plc => 4,
            NodeRole::FieldGateway => 5,
        }
    }

    /// Whether this role can host the initial infection (removable media,
    /// email, etc. — Stuxnet's entry vectors live in office space).
    #[must_use]
    pub fn is_entry_point(self) -> bool {
        matches!(
            self,
            NodeRole::OfficeWorkstation | NodeRole::EngineeringWorkstation
        )
    }
}

/// An undirected communication link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
}

/// The derived CSR view of a [`ScadaNetwork`]: flat neighbor array plus
/// per-node offsets, and the precomputed role/zone membership lists
/// (each in ascending node-id order). Borrow it once via
/// [`ScadaNetwork::topology`] before a hot loop; all methods are O(1)
/// slice lookups.
#[derive(Debug, Clone)]
pub struct Topology {
    /// `offsets[i]..offsets[i + 1]` indexes node `i`'s neighbors.
    offsets: Vec<u32>,
    /// Flat neighbor array. Per-node neighbor order matches link
    /// insertion order (what the old `Vec<Vec<NodeId>>` adjacency
    /// produced), so RNG draw schedules indexed by neighbor position
    /// are unchanged by the CSR migration.
    neighbors: Vec<NodeId>,
    /// Node ids per [`NodeRole`] (indexed by [`NodeRole::index`]).
    by_role: Vec<Vec<NodeId>>,
    /// Node ids per [`Zone`] (indexed by [`Zone::index`]).
    by_zone: Vec<Vec<NodeId>>,
}

impl Topology {
    fn build(n: usize, roles: &[NodeRole], zones: &[Zone], links: &[Link]) -> Self {
        assert!(
            n < u32::MAX as usize && links.len() < (u32::MAX / 2) as usize,
            "node/link counts exceed the CSR u32 offset range"
        );
        // Counting pass.
        let mut offsets = vec![0u32; n + 1];
        for l in links {
            offsets[l.a.0 + 1] += 1;
            offsets[l.b.0 + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // Fill pass, in link insertion order: node `a` receives `b` in
        // exactly the order `connect` was called — the order the old
        // nested-Vec adjacency stored.
        let mut cursor = offsets.clone();
        let mut neighbors = vec![NodeId(0); links.len() * 2];
        for l in links {
            neighbors[cursor[l.a.0] as usize] = l.b;
            cursor[l.a.0] += 1;
            neighbors[cursor[l.b.0] as usize] = l.a;
            cursor[l.b.0] += 1;
        }
        // Role/zone membership: one ascending pass over the SoA arrays.
        let mut by_role = vec![Vec::new(); NodeRole::ALL.len()];
        let mut by_zone = vec![Vec::new(); Zone::ALL.len()];
        for i in 0..n {
            by_role[roles[i].index()].push(NodeId(i));
            by_zone[zones[i].index()].push(NodeId(i));
        }
        Topology {
            offsets,
            neighbors,
            by_role,
            by_zone,
        }
    }

    /// Neighbors of a node, in link insertion order.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[id.0] as usize..self.offsets[id.0 + 1] as usize]
    }

    /// Number of neighbors of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn degree(&self, id: NodeId) -> usize {
        (self.offsets[id.0 + 1] - self.offsets[id.0]) as usize
    }

    /// Ids of nodes with a given role, ascending.
    #[must_use]
    pub fn with_role(&self, role: NodeRole) -> &[NodeId] {
        &self.by_role[role.index()]
    }

    /// Ids of nodes in a given zone, ascending.
    #[must_use]
    pub fn in_zone(&self, zone: Zone) -> &[NodeId] {
        &self.by_zone[zone.index()]
    }
}

/// The plant network graph: structure-of-arrays node state plus an edge
/// list, with the derived [`Topology`] (CSR + role/zone indexes) cached
/// lazily.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScadaNetwork {
    names: Vec<String>,
    roles: Vec<NodeRole>,
    zones: Vec<Zone>,
    profiles: Vec<ComponentProfile>,
    links: Vec<Link>,
    /// Derived CSR view; invalidated by `add_node`/`connect`, rebuilt on
    /// the next query. Skipped by serde (rebuilt lazily after
    /// deserialization) and cheap to clone when empty.
    #[serde(skip)]
    topo: OnceLock<Topology>,
}

impl ScadaNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        ScadaNetwork::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        role: NodeRole,
        zone: Zone,
        profile: ComponentProfile,
    ) -> NodeId {
        self.topo = OnceLock::new();
        self.names.push(name.into());
        self.roles.push(role);
        self.zones.push(zone);
        self.profiles.push(profile);
        NodeId(self.names.len() - 1)
    }

    /// Connects two nodes with an undirected link.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or the link is a self-loop.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> LinkId {
        assert!(
            a.0 < self.names.len() && b.0 < self.names.len(),
            "bad node id"
        );
        assert_ne!(a, b, "self-loops are not allowed");
        self.topo = OnceLock::new();
        self.links.push(Link { a, b });
        LinkId(self.links.len() - 1)
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The derived CSR topology (flat neighbors + role/zone indexes),
    /// building it if a mutation invalidated the cache. Hot loops should
    /// call this once and keep the reference.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.topo.get_or_init(|| {
            Topology::build(self.names.len(), &self.roles, &self.zones, &self.links)
        })
    }

    /// Display name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.0]
    }

    /// Functional role of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn role(&self, id: NodeId) -> NodeRole {
        self.roles[id.0]
    }

    /// Security zone of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn zone(&self, id: NodeId) -> Zone {
        self.zones[id.0]
    }

    /// Deployed component variants of a node (where the diversity
    /// configuration acts).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn profile(&self, id: NodeId) -> &ComponentProfile {
        &self.profiles[id.0]
    }

    /// Mutable profile access (used by diversity placement). Does not
    /// invalidate the cached topology: role, zone and links are fixed at
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn profile_mut(&mut self, id: NodeId) -> &mut ComponentProfile {
        &mut self.profiles[id.0]
    }

    /// The per-node profile array (parallel to node ids) — the SoA view
    /// for bulk readers.
    #[must_use]
    pub fn profiles(&self) -> &[ComponentProfile] {
        &self.profiles
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len()).map(NodeId)
    }

    /// Ids of nodes with a given role, in ascending id order — served
    /// from the precomputed role index, no allocation.
    #[must_use]
    pub fn nodes_with_role(&self, role: NodeRole) -> &[NodeId] {
        self.topology().with_role(role)
    }

    /// Ids of nodes in a given zone, in ascending id order — served from
    /// the precomputed zone index, no allocation.
    #[must_use]
    pub fn nodes_in_zone(&self, zone: Zone) -> &[NodeId] {
        self.topology().in_zone(zone)
    }

    /// Neighbors of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.topology().neighbors(id)
    }

    /// Number of neighbors of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn degree(&self, id: NodeId) -> usize {
        self.topology().degree(id)
    }

    /// Whether a hop from `from` to `to` crosses a zone boundary (and is
    /// therefore subject to the target's firewall policy).
    #[must_use]
    pub fn crosses_zone(&self, from: NodeId, to: NodeId) -> bool {
        self.zones[from.0] != self.zones[to.0]
    }

    /// Nodes reachable from `start` (ignoring firewalls) — basic
    /// connectivity.
    #[must_use]
    pub fn reachable(&self, start: NodeId) -> HashSet<NodeId> {
        let topo = self.topology();
        let mut seen = HashSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some(n) = queue.pop_front() {
            for &next in topo.neighbors(n) {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        seen
    }

    /// Betweenness-like centrality: for every node, the number of
    /// shortest-path trees (one BFS per source) in which it appears as an
    /// interior vertex. Cheap (O(V·E)) and sufficient to rank choke
    /// points for *strategic* diversity placement.
    ///
    /// Runs over the CSR arrays with one set of scratch buffers reused
    /// across all V source BFS passes (epoch-stamped visit marks, so no
    /// per-source clearing) — the only allocations are the scratch set
    /// and the returned ranking.
    #[must_use]
    pub fn centrality(&self) -> Vec<(NodeId, f64)> {
        let topo = self.topology();
        let n = self.names.len();
        let mut score = vec![0.0f64; n];
        // Scratch reused across sources: a visit stamp per node (stamp ==
        // current epoch ⇔ visited this BFS), BFS parents, and the queue.
        let mut stamp = vec![0u32; n];
        let mut parent = vec![u32::MAX; n];
        let mut queue: VecDeque<u32> = VecDeque::with_capacity(n);
        for src in 0..n {
            let epoch = src as u32 + 1;
            stamp[src] = epoch;
            parent[src] = u32::MAX;
            queue.clear();
            queue.push_back(src as u32);
            while let Some(u) = queue.pop_front() {
                for &NodeId(v) in topo.neighbors(NodeId(u as usize)) {
                    if stamp[v] != epoch {
                        stamp[v] = epoch;
                        parent[v] = u;
                        queue.push_back(v as u32);
                    }
                }
            }
            // Walk each destination's path and credit interior vertices.
            for dst in 0..n {
                if dst == src || stamp[dst] != epoch {
                    continue;
                }
                let mut cur = parent[dst];
                while cur != u32::MAX {
                    if cur as usize != src {
                        score[cur as usize] += 1.0;
                    }
                    cur = parent[cur as usize];
                }
            }
        }
        let mut out: Vec<(NodeId, f64)> = (0..n).map(|i| (NodeId(i), score[i])).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
        out
    }

    /// Shortest hop distance between two nodes, if connected.
    #[must_use]
    pub fn hop_distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let topo = self.topology();
        let mut dist = vec![usize::MAX; self.names.len()];
        dist[from.0] = 0;
        let mut q = VecDeque::from([from]);
        while let Some(u) = q.pop_front() {
            for &v in topo.neighbors(u) {
                if dist[v.0] == usize::MAX {
                    dist[v.0] = dist[u.0] + 1;
                    if v == to {
                        return Some(dist[v.0]);
                    }
                    q.push_back(v);
                }
            }
        }
        None
    }
}

impl fmt::Display for ScadaNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "network: {} nodes, {} links",
            self.node_count(),
            self.link_count()
        )?;
        for id in self.node_ids() {
            writeln!(
                f,
                "  [{:>3}] {:<24} {:?} / {:?}",
                id.0, self.names[id.0], self.roles[id.0], self.zones[id.0]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ComponentProfile {
        ComponentProfile::default()
    }

    /// corp — hmi — plc1, plc2 (star around hmi).
    fn small_net() -> (ScadaNetwork, NodeId, NodeId, NodeId, NodeId) {
        let mut net = ScadaNetwork::new();
        let corp = net.add_node(
            "corp",
            NodeRole::OfficeWorkstation,
            Zone::Corporate,
            profile(),
        );
        let hmi = net.add_node("hmi", NodeRole::Hmi, Zone::ControlCenter, profile());
        let plc1 = net.add_node("plc1", NodeRole::Plc, Zone::Field, profile());
        let plc2 = net.add_node("plc2", NodeRole::Plc, Zone::Field, profile());
        net.connect(corp, hmi);
        net.connect(hmi, plc1);
        net.connect(hmi, plc2);
        (net, corp, hmi, plc1, plc2)
    }

    #[test]
    fn construction_and_lookup() {
        let (net, corp, hmi, plc1, _) = small_net();
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.link_count(), 3);
        assert_eq!(net.name(corp), "corp");
        assert_eq!(net.nodes_with_role(NodeRole::Plc).len(), 2);
        assert_eq!(net.nodes_in_zone(Zone::ControlCenter), &[hmi]);
        assert_eq!(net.neighbors(hmi).len(), 3);
        assert!(net.crosses_zone(corp, hmi));
        assert!(!net.crosses_zone(plc1, plc1));
    }

    #[test]
    fn csr_neighbor_order_matches_link_insertion_order() {
        let (net, corp, hmi, plc1, plc2) = small_net();
        // Node `hmi` received corp (link 0), plc1 (link 1), plc2 (link 2)
        // — exactly the order the old nested-Vec adjacency stored.
        assert_eq!(net.neighbors(hmi), &[corp, plc1, plc2]);
        assert_eq!(net.neighbors(corp), &[hmi]);
        assert_eq!(net.degree(hmi), 3);
        assert_eq!(net.degree(plc2), 1);
    }

    #[test]
    fn role_and_zone_indexes_are_ascending() {
        let (net, _, _, plc1, plc2) = small_net();
        assert_eq!(net.nodes_with_role(NodeRole::Plc), &[plc1, plc2]);
        assert!(net.nodes_with_role(NodeRole::Historian).is_empty());
        let field = net.nodes_in_zone(Zone::Field);
        assert!(field.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn topology_cache_invalidated_by_mutation() {
        let (mut net, corp, hmi, ..) = small_net();
        assert_eq!(net.neighbors(corp).len(), 1);
        // Mutate after a query: the cache must rebuild.
        let extra = net.add_node("extra", NodeRole::Historian, Zone::ControlCenter, profile());
        net.connect(corp, extra);
        assert_eq!(net.neighbors(corp).len(), 2);
        assert_eq!(net.nodes_with_role(NodeRole::Historian), &[extra]);
        assert_eq!(net.neighbors(hmi).len(), 3);
    }

    #[test]
    fn profile_rewrites_do_not_invalidate_topology() {
        let (mut net, corp, hmi, ..) = small_net();
        let before = net.topology() as *const Topology;
        net.profile_mut(corp).os = crate::components::OsVariant::Linux;
        let after = net.topology() as *const Topology;
        assert_eq!(before, after, "profile edits must keep the CSR cache");
        assert_eq!(net.neighbors(hmi).len(), 3);
    }

    #[test]
    fn reachability_spans_connected_graph() {
        let (net, corp, ..) = small_net();
        assert_eq!(net.reachable(corp).len(), 4);
    }

    #[test]
    fn disconnected_node_unreachable() {
        let (mut net, corp, ..) = small_net();
        let island = net.add_node("island", NodeRole::Plc, Zone::Field, profile());
        assert!(!net.reachable(corp).contains(&island));
        assert_eq!(net.hop_distance(corp, island), None);
    }

    #[test]
    fn hop_distances() {
        let (net, corp, hmi, plc1, plc2) = small_net();
        assert_eq!(net.hop_distance(corp, corp), Some(0));
        assert_eq!(net.hop_distance(corp, hmi), Some(1));
        assert_eq!(net.hop_distance(corp, plc1), Some(2));
        assert_eq!(net.hop_distance(plc1, plc2), Some(2));
    }

    #[test]
    fn centrality_ranks_choke_point_first() {
        let (net, _, hmi, ..) = small_net();
        let ranking = net.centrality();
        assert_eq!(ranking[0].0, hmi, "hub should be most central");
        assert!(ranking[0].1 > 0.0);
    }

    #[test]
    fn centrality_zero_for_leaves() {
        let (net, corp, ..) = small_net();
        let ranking = net.centrality();
        let corp_score = ranking.iter().find(|(id, _)| *id == corp).unwrap().1;
        assert_eq!(corp_score, 0.0);
    }

    #[test]
    fn centrality_handles_disconnected_components() {
        let (mut net, _, hmi, ..) = small_net();
        let a = net.add_node("a", NodeRole::Plc, Zone::Field, profile());
        let b = net.add_node("b", NodeRole::Plc, Zone::Field, profile());
        let c = net.add_node("c", NodeRole::Plc, Zone::Field, profile());
        net.connect(a, b);
        net.connect(b, c);
        let ranking = net.centrality();
        // `b` is interior on a–c paths (both directions), `hmi` interior
        // on all cross-leaf paths of the star; both score > 0.
        let score = |id| ranking.iter().find(|(i, _)| *i == id).unwrap().1;
        assert!(score(b) > 0.0);
        assert!(score(hmi) > score(b));
        assert_eq!(score(a), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let (mut net, corp, ..) = small_net();
        net.connect(corp, corp);
    }

    #[test]
    fn entry_point_roles() {
        assert!(NodeRole::OfficeWorkstation.is_entry_point());
        assert!(NodeRole::EngineeringWorkstation.is_entry_point());
        assert!(!NodeRole::Plc.is_entry_point());
        assert!(!NodeRole::Historian.is_entry_point());
    }

    #[test]
    fn role_and_zone_index_round_trip() {
        for (i, r) in NodeRole::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        for (i, z) in Zone::ALL.iter().enumerate() {
            assert_eq!(z.index(), i);
        }
    }

    #[test]
    fn display_lists_nodes() {
        let (net, ..) = small_net();
        let s = net.to_string();
        assert!(s.contains("4 nodes"));
        assert!(s.contains("plc1"));
    }

    #[test]
    fn profile_mut_updates_profile() {
        let (mut net, corp, ..) = small_net();
        *net.profile_mut(corp) = ComponentProfile::hardened();
        assert!(net.profile(corp).resilience() > 0.5);
    }

    #[test]
    fn serde_round_trip_rebuilds_topology() {
        let (net, _, hmi, ..) = small_net();
        let json = serde_json::to_string(&net).unwrap();
        let back: ScadaNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(back.node_count(), net.node_count());
        assert_eq!(back.neighbors(hmi), net.neighbors(hmi));
        assert_eq!(
            back.nodes_with_role(NodeRole::Plc),
            net.nodes_with_role(NodeRole::Plc)
        );
    }
}
