//! The unified replication-execution layer.
//!
//! Every Monte-Carlo workload in the workspace — campaign measurement,
//! the DoE design-point sweep, the generic replication harness, the
//! bench experiments — repeats a seeded task many times and aggregates
//! the results. Before this module each of those call sites hand-rolled
//! its own loop, its own seed schedule, and its own (sometimes absent)
//! parallelism. Now they all describe *what* to run with a
//! [`ReplicationPlan`], hand the per-replication task to an
//! [`Executor`], and fold the ordered outputs with a [`Collector`].
//!
//! Three properties hold by construction:
//!
//! * **Determinism** — replication *i* draws its seed from
//!   `(master_seed, namespace ^ i)` regardless of scheduling, and results
//!   come back in replication order, so a serial and a parallel run of
//!   the same plan are bit-identical.
//! * **One seam for scaling** — sharding, batching policy and backend
//!   selection land here once instead of in four hand-rolled loops.
//! * **Batch structure is part of the plan** — ANOVA replicate groups
//!   (`batches × batch_size`) travel with the plan, so collectors can
//!   aggregate per batch without re-deriving shapes.

use crate::rng::{derive_seed, StreamId};
use rayon::prelude::*;
use std::ops::Range;

/// The default stream namespace for replication seeds (shared with the
/// historical `ReplicationRunner` schedule so existing experiments keep
/// their exact random sequences).
pub const DEFAULT_STREAM_NAMESPACE: u64 = 0x5EED_0000_0000_0000;

/// One replication of a plan: its index and derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replication {
    /// Replication index in `0..plan.total()`.
    pub index: u32,
    /// The seed this replication must use.
    pub seed: u64,
}

/// Describes a replicated experiment: how many replications, how they
/// group into batches (the ANOVA replicate unit), and how each
/// replication's seed derives from the master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationPlan {
    batches: u32,
    batch_size: u32,
    master_seed: u64,
    namespace: u64,
}

impl ReplicationPlan {
    /// Creates a plan of `batches × batch_size` replications.
    ///
    /// # Panics
    ///
    /// Panics if `batches` or `batch_size` is zero, or if the total
    /// replication count overflows `u32`.
    #[must_use]
    pub fn new(batches: u32, batch_size: u32, master_seed: u64) -> Self {
        assert!(
            batches > 0 && batch_size > 0,
            "non-empty batch plan required"
        );
        assert!(
            batches.checked_mul(batch_size).is_some(),
            "replication count overflows u32"
        );
        ReplicationPlan {
            batches,
            batch_size,
            master_seed,
            namespace: DEFAULT_STREAM_NAMESPACE,
        }
    }

    /// Creates an unbatched plan: one batch of `replications`.
    ///
    /// # Panics
    ///
    /// Panics if `replications` is zero.
    #[must_use]
    pub fn flat(replications: u32, master_seed: u64) -> Self {
        ReplicationPlan::new(1, replications, master_seed)
    }

    /// Replaces the stream namespace seeds are derived under. Call sites
    /// migrated from hand-rolled loops use this to keep their historical
    /// seed schedules.
    #[must_use]
    pub const fn with_namespace(mut self, namespace: u64) -> Self {
        self.namespace = namespace;
        self
    }

    /// Derives a sub-plan whose master seed is drawn from this plan's
    /// seed and `stream` — the idiom for giving each design point of a
    /// sweep its own decorrelated seed schedule.
    #[must_use]
    pub fn derived(self, stream: StreamId) -> Self {
        ReplicationPlan {
            master_seed: derive_seed(self.master_seed, stream),
            ..self
        }
    }

    /// The number of replicate batches.
    #[must_use]
    pub fn batches(&self) -> u32 {
        self.batches
    }

    /// Replications per batch.
    #[must_use]
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Total replications (`batches × batch_size`).
    #[must_use]
    pub fn total(&self) -> u32 {
        self.batches * self.batch_size
    }

    /// The master seed.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The stream namespace.
    #[must_use]
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// The stream identifier of replication `index`.
    #[must_use]
    pub fn stream_id(&self, index: u32) -> StreamId {
        StreamId(self.namespace ^ u64::from(index))
    }

    /// The seed of replication `index` — a pure function of
    /// `(master_seed, namespace, index)`, independent of scheduling.
    #[must_use]
    pub fn seed_for(&self, index: u32) -> u64 {
        derive_seed(self.master_seed, self.stream_id(index))
    }

    /// The [`Replication`] descriptor for `index`.
    #[must_use]
    pub fn replication(&self, index: u32) -> Replication {
        Replication {
            index,
            seed: self.seed_for(index),
        }
    }

    /// Iterates the index ranges of each batch (for collectors that
    /// aggregate per replicate group).
    pub fn batch_ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        let size = self.batch_size as usize;
        (0..self.batches as usize).map(move |b| b * size..(b + 1) * size)
    }
}

/// How an [`Executor`] schedules replications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One after another on the calling thread.
    Serial,
    /// Work-shared across all available cores.
    #[default]
    Parallel,
}

/// Runs the replications of a [`ReplicationPlan`].
///
/// The executor owns scheduling *only*: seeds come from the plan and
/// outputs always return in replication order, so every mode produces
/// identical results.
///
/// # Examples
///
/// ```
/// use diversify_des::exec::{Executor, ReplicationPlan};
///
/// let plan = ReplicationPlan::flat(100, 42);
/// let serial: Vec<u64> = Executor::serial().run(&plan, |rep| rep.seed % 97);
/// let parallel: Vec<u64> = Executor::parallel().run(&plan, |rep| rep.seed % 97);
/// assert_eq!(serial, parallel);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Executor {
    mode: ExecMode,
}

impl Executor {
    /// An executor with the given mode.
    #[must_use]
    pub const fn new(mode: ExecMode) -> Self {
        Executor { mode }
    }

    /// A serial executor.
    #[must_use]
    pub const fn serial() -> Self {
        Executor {
            mode: ExecMode::Serial,
        }
    }

    /// A parallel executor.
    #[must_use]
    pub const fn parallel() -> Self {
        Executor {
            mode: ExecMode::Parallel,
        }
    }

    /// The scheduling mode.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Runs every replication of `plan` through `task`, returning the
    /// outputs in replication order.
    pub fn run<T, F>(&self, plan: &ReplicationPlan, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Replication) -> T + Sync + Send,
    {
        match self.mode {
            ExecMode::Serial => (0..plan.total())
                .map(|i| task(plan.replication(i)))
                .collect(),
            ExecMode::Parallel => (0..plan.total())
                .into_par_iter()
                .map(|i| task(plan.replication(i)))
                .collect(),
        }
    }

    /// Runs every replication and folds the ordered outputs with
    /// `collector`.
    pub fn collect<T, F, C>(&self, plan: &ReplicationPlan, task: F, collector: &C) -> C::Output
    where
        T: Send,
        F: Fn(Replication) -> T + Sync + Send,
        C: Collector<T>,
    {
        collector.finish(plan, self.run(plan, task))
    }
}

/// Folds the ordered per-replication outputs of a plan into an
/// aggregate. Implementations receive the plan so they can use its batch
/// structure (e.g. per-batch means for ANOVA replicate groups).
pub trait Collector<T> {
    /// The aggregated result type.
    type Output;

    /// Aggregates `samples`, which are in replication order and have
    /// exactly `plan.total()` entries.
    fn finish(&self, plan: &ReplicationPlan, samples: Vec<T>) -> Self::Output;
}

/// A [`Collector`] computing the mean of scalar outputs — the common
/// case for quick probability estimates.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanCollector;

impl Collector<f64> for MeanCollector {
    type Output = f64;

    fn finish(&self, _plan: &ReplicationPlan, samples: Vec<f64>) -> f64 {
        let n = samples.len();
        assert!(n > 0, "mean of zero replications");
        samples.iter().sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStream;

    #[test]
    fn seeds_are_pure_functions_of_plan() {
        let plan = ReplicationPlan::new(4, 25, 99);
        let again = ReplicationPlan::new(4, 25, 99);
        for i in 0..plan.total() {
            assert_eq!(plan.seed_for(i), again.seed_for(i));
        }
        // Seeds do not depend on the batch split, only on the index.
        let other_split = ReplicationPlan::new(25, 4, 99);
        for i in 0..plan.total() {
            assert_eq!(plan.seed_for(i), other_split.seed_for(i));
        }
    }

    #[test]
    fn namespace_matches_legacy_replication_runner_schedule() {
        // ReplicationRunner historically derived seed i as
        // derive_seed(master, StreamId(0x5EED_0000_0000_0000 ^ i)); the
        // default plan must reproduce that exactly.
        let plan = ReplicationPlan::flat(100, 1234);
        for i in 0..100 {
            assert_eq!(
                plan.seed_for(i),
                derive_seed(1234, StreamId(DEFAULT_STREAM_NAMESPACE ^ u64::from(i)))
            );
        }
    }

    #[test]
    fn additive_namespaces_are_xor_compatible_for_small_indices() {
        // Migrated call sites relied on `base + i` stream ids with base
        // having zero low bits; XOR preserves those schedules for any
        // index below 2^16.
        for base in [0x4E_0000u64, 0xCA_0000] {
            for i in [0u32, 1, 2, 255, 65_535] {
                assert_eq!(base ^ u64::from(i), base + u64::from(i));
            }
        }
    }

    #[test]
    fn serial_equals_parallel() {
        let plan = ReplicationPlan::new(3, 33, 7);
        let task = |rep: Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(1));
            (0..100).map(|_| rng.uniform()).sum::<f64>()
        };
        let serial = Executor::serial().run(&plan, task);
        let parallel = Executor::parallel().run(&plan, task);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batch_ranges_tile_the_plan() {
        let plan = ReplicationPlan::new(4, 5, 0);
        let ranges: Vec<_> = plan.batch_ranges().collect();
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..5);
        assert_eq!(ranges[3], 15..20);
    }

    #[test]
    fn derived_plans_decorrelate() {
        let base = ReplicationPlan::new(2, 10, 42);
        let a = base.derived(StreamId(0));
        let b = base.derived(StreamId(1));
        assert_ne!(a.master_seed(), b.master_seed());
        assert_eq!(a.batches(), base.batches());
        // Deriving is deterministic.
        assert_eq!(a, base.derived(StreamId(0)));
    }

    #[test]
    fn mean_collector_averages() {
        let plan = ReplicationPlan::flat(4, 0);
        let mean =
            Executor::serial().collect(&plan, |rep| f64::from(rep.index) + 1.0, &MeanCollector);
        assert!((mean - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty batch plan")]
    fn zero_batches_rejected() {
        let _ = ReplicationPlan::new(0, 5, 1);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_plan_rejected() {
        let _ = ReplicationPlan::new(u32::MAX, 2, 1);
    }
}
