//! The unified replication-execution layer.
//!
//! Every Monte-Carlo workload in the workspace — campaign measurement,
//! the DoE design-point sweep, the generic replication harness, the
//! bench experiments — repeats a seeded task many times and aggregates
//! the results. Call sites describe *what* to run with a
//! [`ReplicationPlan`], hand the per-replication task to an
//! [`Executor`], and fold the outputs with a [`Collector`] — a
//! mergeable fold (`empty` / `accumulate` / `merge` / `finish`), so
//! aggregation streams: outcomes fold into accumulators round by round
//! instead of being materialized into one `Vec` of every replication.
//!
//! Three properties hold by construction:
//!
//! * **Determinism** — replication *i* draws its seed from
//!   `(master_seed, namespace ^ i)` regardless of scheduling, and the
//!   fold always accumulates in replication order within a batch and
//!   merges batch accumulators in batch order, so a serial and a
//!   parallel run of the same plan are bit-identical.
//! * **Bounded memory** — the executor materializes at most one batch of
//!   raw outputs at a time; collectors keep O(1) (or O(batches)) state
//!   per metric instead of O(replications).
//! * **Adaptive precision** — [`Executor::run_adaptive`] executes
//!   batch-sized rounds until a [`StopRule`] is met, and because fixed
//!   plans fold through the identical round structure, an adaptive run
//!   stopped after *N* replications is bit-identical to a fixed plan of
//!   *N*.
//! * **Workspace reuse** — [`Executor::run_ws`] (and its adaptive twin
//!   [`Executor::run_adaptive_ws`]) hands every replication a mutable
//!   per-worker *workspace* created by an `init` closure, so tasks can
//!   keep scratch buffers, simulators and other heap state alive across
//!   the replications a worker executes instead of reallocating them
//!   per replication. Seeds and the fold shape are untouched — in fact
//!   `run`/`collect`/`run_adaptive` *are* the workspace path with a unit
//!   workspace — so workspace, serial and parallel runs of the same plan
//!   all stay bit-identical.

use crate::rng::{derive_seed, StreamId};
use rayon::prelude::*;
use std::ops::Range;
use std::sync::Mutex;

/// The default stream namespace for replication seeds (shared with the
/// historical `ReplicationRunner` schedule so existing experiments keep
/// their exact random sequences).
pub const DEFAULT_STREAM_NAMESPACE: u64 = 0x5EED_0000_0000_0000;

/// One replication of a plan: its index and derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replication {
    /// Replication index in `0..plan.total()`.
    pub index: u32,
    /// The seed this replication must use.
    pub seed: u64,
}

/// Describes a replicated experiment: how many replications, how they
/// group into batches (the ANOVA replicate unit and the adaptive round
/// size), and how each replication's seed derives from the master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationPlan {
    batches: u32,
    batch_size: u32,
    master_seed: u64,
    namespace: u64,
}

impl ReplicationPlan {
    /// Creates a plan of `batches × batch_size` replications.
    ///
    /// # Panics
    ///
    /// Panics if `batches` or `batch_size` is zero, or if the total
    /// replication count overflows `u32`.
    #[must_use]
    pub fn new(batches: u32, batch_size: u32, master_seed: u64) -> Self {
        assert!(
            batches > 0 && batch_size > 0,
            "non-empty batch plan required"
        );
        assert!(
            batches.checked_mul(batch_size).is_some(),
            "replication count overflows u32"
        );
        ReplicationPlan {
            batches,
            batch_size,
            master_seed,
            namespace: DEFAULT_STREAM_NAMESPACE,
        }
    }

    /// Creates an unbatched plan: one batch of `replications`.
    ///
    /// # Panics
    ///
    /// Panics if `replications` is zero.
    #[must_use]
    pub fn flat(replications: u32, master_seed: u64) -> Self {
        ReplicationPlan::new(1, replications, master_seed)
    }

    /// Replaces the stream namespace seeds are derived under. Call sites
    /// migrated from hand-rolled loops use this to keep their historical
    /// seed schedules.
    #[must_use]
    pub const fn with_namespace(mut self, namespace: u64) -> Self {
        self.namespace = namespace;
        self
    }

    /// Replaces the batch count, keeping batch size, master seed and
    /// namespace. Seeds depend only on the replication index, so the
    /// first `min(total, other.total)` replications of the two plans are
    /// identical — this is how an adaptive run names the fixed plan it
    /// actually executed.
    ///
    /// # Panics
    ///
    /// Panics if `batches` is zero or the total overflows `u32`.
    #[must_use]
    pub fn with_batches(self, batches: u32) -> Self {
        ReplicationPlan::new(batches, self.batch_size, self.master_seed)
            .with_namespace(self.namespace)
    }

    /// Derives a sub-plan whose master seed is drawn from this plan's
    /// seed and `stream` — the idiom for giving each design point of a
    /// sweep its own decorrelated seed schedule.
    #[must_use]
    pub fn derived(self, stream: StreamId) -> Self {
        ReplicationPlan {
            master_seed: derive_seed(self.master_seed, stream),
            ..self
        }
    }

    /// The number of replicate batches.
    #[must_use]
    pub fn batches(&self) -> u32 {
        self.batches
    }

    /// Replications per batch.
    #[must_use]
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Total replications (`batches × batch_size`).
    #[must_use]
    pub fn total(&self) -> u32 {
        self.batches * self.batch_size
    }

    /// The master seed.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The stream namespace.
    #[must_use]
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// The batch a replication index belongs to.
    #[must_use]
    pub fn batch_of(&self, index: u32) -> u32 {
        index / self.batch_size
    }

    /// The stream identifier of replication `index`.
    #[must_use]
    pub fn stream_id(&self, index: u32) -> StreamId {
        StreamId(self.namespace ^ u64::from(index))
    }

    /// The seed of replication `index` — a pure function of
    /// `(master_seed, namespace, index)`, independent of scheduling and
    /// of the batch count.
    #[must_use]
    pub fn seed_for(&self, index: u32) -> u64 {
        derive_seed(self.master_seed, self.stream_id(index))
    }

    /// The [`Replication`] descriptor for `index`.
    #[must_use]
    pub fn replication(&self, index: u32) -> Replication {
        Replication {
            index,
            seed: self.seed_for(index),
        }
    }

    /// Iterates the index ranges of each batch (for collectors that
    /// aggregate per replicate group).
    pub fn batch_ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        let size = self.batch_size as usize;
        (0..self.batches as usize).map(move |b| b * size..(b + 1) * size)
    }
}

/// How an [`Executor`] schedules replications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One after another on the calling thread.
    Serial,
    /// Work-shared across all available cores.
    #[default]
    Parallel,
}

/// Folds per-replication outputs into an aggregate, mergeably.
///
/// A collector is a fold the executor drives: it creates [`empty`]
/// accumulators, [`accumulate`]s one replication's output at a time (in
/// replication order within a batch), [`merge`]s partial accumulators
/// (in batch order), and [`finish`]es the final accumulator into the
/// output. Because partial accumulators combine, parallel workers and
/// adaptive rounds never have to materialize a `Vec` of every
/// replication — state stays O(1) (or O(batches)) per metric.
///
/// The executor guarantees a *fixed fold shape*: one accumulator per
/// batch, filled in replication order, merged into the running
/// accumulator in batch order. Any collector whose `accumulate`/`merge`
/// follow from that shape therefore produces bit-identical output on
/// serial and parallel executors, and on adaptive runs truncated to the
/// same replication count.
///
/// [`empty`]: Collector::empty
/// [`accumulate`]: Collector::accumulate
/// [`merge`]: Collector::merge
/// [`finish`]: Collector::finish
pub trait Collector<T> {
    /// The intermediate, mergeable accumulator.
    type Accum: Send;
    /// The aggregated result type.
    type Output;

    /// A fresh accumulator with nothing folded in.
    fn empty(&self) -> Self::Accum;

    /// Folds one replication's output into `acc`. `plan` carries the
    /// batch structure (`plan.batch_of(rep.index)` is the replicate
    /// group); outputs of a batch arrive in replication order.
    fn accumulate(&self, plan: &ReplicationPlan, acc: &mut Self::Accum, rep: Replication, value: T);

    /// Merges `other` into `into`. `other` always covers a replication
    /// range strictly after everything already folded into `into`.
    fn merge(&self, into: &mut Self::Accum, other: Self::Accum);

    /// Turns the final accumulator into the output. `plan` describes
    /// exactly the replications that were folded (for an adaptive run,
    /// the effective plan of the rounds actually executed).
    fn finish(&self, plan: &ReplicationPlan, acc: Self::Accum) -> Self::Output;
}

/// A [`Collector`] materializing every output in replication order — the
/// compatibility shape for callers that genuinely need raw outcomes
/// (e.g. campaign post-mortems). Memory is O(replications); prefer a
/// streaming collector on hot paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct VecCollector;

impl<T: Send> Collector<T> for VecCollector {
    type Accum = Vec<T>;
    type Output = Vec<T>;

    fn empty(&self) -> Vec<T> {
        Vec::new()
    }

    fn accumulate(&self, _plan: &ReplicationPlan, acc: &mut Vec<T>, _rep: Replication, value: T) {
        acc.push(value);
    }

    fn merge(&self, into: &mut Vec<T>, mut other: Vec<T>) {
        // The first round of a flat plan merges into an empty
        // accumulator: adopt the buffer instead of re-copying it.
        if into.is_empty() {
            *into = other;
        } else {
            into.append(&mut other);
        }
    }

    fn finish(&self, _plan: &ReplicationPlan, acc: Vec<T>) -> Vec<T> {
        acc
    }
}

/// A [`Collector`] computing the mean of scalar outputs in O(1) memory —
/// the common case for quick probability estimates.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanCollector;

/// Running state of [`MeanCollector`]: count and sum.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanAccum {
    n: u64,
    sum: f64,
}

impl Collector<f64> for MeanCollector {
    type Accum = MeanAccum;
    type Output = f64;

    fn empty(&self) -> MeanAccum {
        MeanAccum::default()
    }

    fn accumulate(&self, _plan: &ReplicationPlan, acc: &mut MeanAccum, _rep: Replication, x: f64) {
        acc.n += 1;
        acc.sum += x;
    }

    fn merge(&self, into: &mut MeanAccum, other: MeanAccum) {
        into.n += other.n;
        into.sum += other.sum;
    }

    fn finish(&self, _plan: &ReplicationPlan, acc: MeanAccum) -> f64 {
        assert!(acc.n > 0, "mean of zero replications");
        acc.sum / acc.n as f64
    }
}

/// A point estimate with its confidence-interval half-width — what a
/// [`StopRule`] judges. Produced by the *monitor* closure of
/// [`Executor::run_adaptive`] (typically from a streaming accumulator's
/// moment-based interval).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Precision {
    /// Current point estimate of the monitored response.
    pub estimate: f64,
    /// Half-width of its confidence interval.
    pub half_width: f64,
}

impl Precision {
    /// The half-width relative to the estimate's magnitude
    /// (`+inf` when the estimate is zero but the interval is not tight).
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.estimate == 0.0 {
            if self.half_width == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.half_width / self.estimate.abs()
        }
    }
}

/// When an adaptive run may stop: the monitored response's relative
/// confidence-interval half-width must drop to `relative_half_width`,
/// subject to replication bounds.
///
/// Bounds are rounded to whole batch-sized rounds: the run never checks
/// the rule before `min_replications` and never exceeds
/// `max_replications` (rounded *down* to whole rounds, so the cap is
/// strict; at least one round always executes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    /// Target relative CI half-width ε: stop once
    /// `half_width ≤ ε × |estimate|`.
    pub relative_half_width: f64,
    /// Replications that must complete before the rule is consulted.
    pub min_replications: u32,
    /// Hard replication cap (the run stops here even if the target was
    /// never met).
    pub max_replications: u32,
}

impl StopRule {
    /// A relative-precision rule.
    ///
    /// # Panics
    ///
    /// Panics unless `relative_half_width` is finite and positive and
    /// `min_replications ≤ max_replications` with a non-zero cap.
    #[must_use]
    pub fn relative(
        relative_half_width: f64,
        min_replications: u32,
        max_replications: u32,
    ) -> Self {
        assert!(
            relative_half_width.is_finite() && relative_half_width > 0.0,
            "relative half-width target must be finite and positive"
        );
        assert!(
            min_replications <= max_replications && max_replications > 0,
            "replication bounds must satisfy 0 < min <= max"
        );
        StopRule {
            relative_half_width,
            min_replications,
            max_replications,
        }
    }

    /// Whether `precision` meets the target.
    #[must_use]
    pub fn is_met(&self, precision: &Precision) -> bool {
        precision.half_width <= self.relative_half_width * precision.estimate.abs()
    }
}

/// Result of an [`Executor::run_adaptive`] call.
#[derive(Debug, Clone)]
pub struct AdaptiveRun<O> {
    /// The collector's output over the replications actually executed.
    pub output: O,
    /// The effective fixed plan this run is bit-identical to
    /// (`rounds × batch_size` replications under the base plan's seed
    /// schedule).
    pub plan: ReplicationPlan,
    /// Batch-sized rounds executed.
    pub rounds: u32,
    /// Replications executed (`rounds × batch_size`).
    pub replications: u32,
    /// Whether the stop rule's precision target was met (as opposed to
    /// hitting the replication cap).
    pub target_met: bool,
    /// The monitored response's precision at the final check, if the
    /// monitor could compute one.
    pub precision: Option<Precision>,
}

/// Runs the replications of a [`ReplicationPlan`].
///
/// The executor owns scheduling *only*: seeds come from the plan, and
/// the fold shape (accumulate in replication order within a batch, merge
/// batch accumulators in batch order) is fixed, so every mode produces
/// identical results.
///
/// # Examples
///
/// ```
/// use diversify_des::exec::{Executor, ReplicationPlan};
///
/// let plan = ReplicationPlan::flat(100, 42);
/// let serial: Vec<u64> = Executor::serial().run(&plan, |rep| rep.seed % 97);
/// let parallel: Vec<u64> = Executor::parallel().run(&plan, |rep| rep.seed % 97);
/// assert_eq!(serial, parallel);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Executor {
    mode: ExecMode,
}

impl Executor {
    /// An executor with the given mode.
    #[must_use]
    pub const fn new(mode: ExecMode) -> Self {
        Executor { mode }
    }

    /// A serial executor.
    #[must_use]
    pub const fn serial() -> Self {
        Executor {
            mode: ExecMode::Serial,
        }
    }

    /// A parallel executor.
    #[must_use]
    pub const fn parallel() -> Self {
        Executor {
            mode: ExecMode::Parallel,
        }
    }

    /// The scheduling mode.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Executes one batch-sized round (`round` is the batch index) and
    /// folds its ordered outputs into a fresh accumulator. A serial
    /// round folds each output as it is produced; a parallel round
    /// materializes the round's outputs (the only buffered vector, so
    /// peak memory is O(batch_size) regardless of how many rounds run)
    /// and folds them in replication order — the accumulate order is
    /// identical either way. Every replication borrows a workspace from
    /// `pool` for the duration of its task.
    fn round_accum<W, T, I, F, C>(
        &self,
        plan: &ReplicationPlan,
        round: u32,
        pool: &WorkspacePool<'_, W, I>,
        task: &F,
        collector: &C,
    ) -> C::Accum
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
    {
        let start = round * plan.batch_size();
        let indices = start..start + plan.batch_size();
        let mut acc = collector.empty();
        match self.mode {
            ExecMode::Serial => {
                for i in indices {
                    let rep = plan.replication(i);
                    let value = pool.with(|ws| task(ws, rep));
                    collector.accumulate(plan, &mut acc, rep, value);
                }
            }
            ExecMode::Parallel => {
                let values: Vec<T> = indices
                    .into_par_iter()
                    .map(|i| pool.with(|ws| task(ws, plan.replication(i))))
                    .collect();
                for (offset, value) in values.into_iter().enumerate() {
                    let rep = plan.replication(start + offset as u32);
                    collector.accumulate(plan, &mut acc, rep, value);
                }
            }
        }
        acc
    }

    /// Folds rounds `0..rounds` of `plan` into one accumulator, reusing
    /// the workspaces in `pool` across rounds.
    fn fold_rounds<W, T, I, F, C>(
        &self,
        plan: &ReplicationPlan,
        rounds: u32,
        pool: &WorkspacePool<'_, W, I>,
        task: &F,
        collector: &C,
    ) -> C::Accum
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
    {
        let mut acc = collector.empty();
        for round in 0..rounds {
            let partial = self.round_accum(plan, round, pool, task, collector);
            collector.merge(&mut acc, partial);
        }
        acc
    }

    /// Runs every replication of `plan` through `task`, returning the
    /// outputs in replication order (the [`VecCollector`] fold).
    pub fn run<T, F>(&self, plan: &ReplicationPlan, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Replication) -> T + Sync + Send,
    {
        self.collect(plan, task, &VecCollector)
    }

    /// Runs every replication and folds the outputs with `collector`,
    /// one batch-sized round at a time.
    pub fn collect<T, F, C>(&self, plan: &ReplicationPlan, task: F, collector: &C) -> C::Output
    where
        T: Send,
        F: Fn(Replication) -> T + Sync + Send,
        C: Collector<T>,
    {
        self.run_ws(plan, || (), |(): &mut (), rep| task(rep), collector)
    }

    /// Runs every replication with a reusable per-worker **workspace**
    /// and folds the outputs with `collector`.
    ///
    /// `init` creates one workspace per worker that needs one (a serial
    /// run creates exactly one; a parallel run at most one per
    /// concurrently active worker). Each replication receives `&mut W`
    /// for the duration of its task, so simulators, scratch vectors and
    /// other heap state amortize across all the replications a worker
    /// executes — the task is responsible for resetting whatever
    /// per-replication state it reads (the campaign and SAN workspaces
    /// in this workspace do so by construction).
    ///
    /// Seeds are still the plan's pure `namespace ^ index` derivation
    /// and the fold shape is the same fixed per-round structure as
    /// [`Executor::collect`], so for any task whose output depends only
    /// on its `Replication` (not on workspace history), `run_ws` is
    /// **bit-identical** to `collect` on every executor mode.
    ///
    /// # Examples
    ///
    /// ```
    /// use diversify_des::exec::{Executor, ReplicationPlan, VecCollector};
    ///
    /// let plan = ReplicationPlan::flat(64, 7);
    /// // The workspace is a scratch buffer reused across replications.
    /// let sums: Vec<u64> = Executor::parallel().run_ws(
    ///     &plan,
    ///     Vec::new,
    ///     |scratch: &mut Vec<u64>, rep| {
    ///         scratch.clear();
    ///         scratch.extend((0..8).map(|k| rep.seed.rotate_left(k) % 97));
    ///         scratch.iter().sum()
    ///     },
    ///     &VecCollector,
    /// );
    /// let plain: Vec<u64> = Executor::serial().run(&plan, |rep| {
    ///     (0..8).map(|k| rep.seed.rotate_left(k) % 97).sum()
    /// });
    /// assert_eq!(sums, plain);
    /// ```
    pub fn run_ws<W, T, I, F, C>(
        &self,
        plan: &ReplicationPlan,
        init: I,
        task: F,
        collector: &C,
    ) -> C::Output
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
    {
        let pool = WorkspacePool::new(&init);
        let acc = self.fold_rounds(plan, plan.batches(), &pool, &task, collector);
        collector.finish(plan, acc)
    }

    /// Executes batch-sized rounds of `plan` until `rule` is satisfied
    /// on the response watched by `monitor`, or the replication cap is
    /// hit.
    ///
    /// `plan` contributes the seed schedule and the round size
    /// (`batch_size`); its batch *count* is ignored — the bounds come
    /// from the rule. After each round past `rule.min_replications`, the
    /// monitor receives the running accumulator and the replication
    /// count and returns the current [`Precision`] of the chosen
    /// response (or `None` while it cannot be computed, e.g. no
    /// variance yet).
    ///
    /// Seeds stay the plan's `namespace ^ index` derivation and the fold
    /// shape is the fixed per-round structure, so a run that stops after
    /// *N* replications is **bit-identical** to
    /// `collect(&plan.with_batches(N / batch_size), …)`.
    pub fn run_adaptive<T, F, C, M>(
        &self,
        plan: &ReplicationPlan,
        rule: &StopRule,
        task: F,
        collector: &C,
        monitor: M,
    ) -> AdaptiveRun<C::Output>
    where
        T: Send,
        F: Fn(Replication) -> T + Sync + Send,
        C: Collector<T>,
        M: Fn(&C::Accum, u32) -> Option<Precision>,
    {
        self.run_adaptive_ws(
            plan,
            rule,
            || (),
            |(): &mut (), rep| task(rep),
            collector,
            monitor,
        )
    }

    /// The workspace twin of [`Executor::run_adaptive`]: adaptive
    /// batch-sized rounds whose replications borrow per-worker
    /// workspaces from one pool that stays alive **across rounds**, so
    /// an adaptive run re-pays workspace setup once, not once per
    /// round.
    ///
    /// Everything `run_adaptive` guarantees still holds: a run that
    /// stops after *N* replications is bit-identical to
    /// `run_ws(&plan.with_batches(N / batch_size), …)` — and, for
    /// history-independent tasks, to the plain `collect` of that plan.
    pub fn run_adaptive_ws<W, T, I, F, C, M>(
        &self,
        plan: &ReplicationPlan,
        rule: &StopRule,
        init: I,
        task: F,
        collector: &C,
        monitor: M,
    ) -> AdaptiveRun<C::Output>
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
        M: Fn(&C::Accum, u32) -> Option<Precision>,
    {
        let pool = WorkspacePool::new(&init);
        let batch = plan.batch_size();
        let max_rounds = (rule.max_replications / batch).max(1);
        let min_rounds = rule.min_replications.div_ceil(batch).clamp(1, max_rounds);
        let mut acc = collector.empty();
        let mut rounds = 0u32;
        let mut precision = None;
        let mut target_met = false;
        while rounds < max_rounds {
            let partial = self.round_accum(plan, rounds, &pool, &task, collector);
            collector.merge(&mut acc, partial);
            rounds += 1;
            if rounds < min_rounds {
                continue;
            }
            precision = monitor(&acc, rounds * batch);
            if let Some(p) = &precision {
                if rule.is_met(p) {
                    target_met = true;
                    break;
                }
            }
        }
        let effective = plan.with_batches(rounds);
        AdaptiveRun {
            output: collector.finish(&effective, acc),
            plan: effective,
            rounds,
            replications: rounds * batch,
            target_met,
            precision,
        }
    }
}

/// A pool of reusable per-worker workspaces behind the
/// [`Executor::run_ws`] family.
///
/// Workspaces are checked out for the duration of one replication and
/// returned afterwards, so the pool holds at most one workspace per
/// concurrently active worker, created lazily by `init`. The free list
/// lives behind a mutex, but check-out/check-in is two uncontended
/// lock round-trips per replication — noise next to any simulation
/// task — and in the steady state the pool performs no allocation.
struct WorkspacePool<'i, W, I> {
    init: &'i I,
    free: Mutex<Vec<W>>,
}

impl<'i, W, I: Fn() -> W> WorkspacePool<'i, W, I> {
    fn new(init: &'i I) -> Self {
        WorkspacePool {
            init,
            free: Mutex::new(Vec::new()),
        }
    }

    /// Runs `f` with a workspace checked out of the pool (creating one
    /// when every existing workspace is busy), then returns it. If `f`
    /// panics the workspace is dropped, never recycled half-mutated.
    ///
    /// Zero-sized workspaces (the unit workspace the plain
    /// `run`/`collect`/`run_adaptive` paths delegate with) skip the pool
    /// entirely — there is nothing to reuse, so legacy callers pay no
    /// lock traffic. The branch is a compile-time constant per
    /// monomorphization.
    fn with<R>(&self, f: impl FnOnce(&mut W) -> R) -> R {
        if std::mem::size_of::<W>() == 0 {
            let mut ws = (self.init)();
            return f(&mut ws);
        }
        let checked_out = self.free.lock().expect("workspace pool poisoned").pop();
        let mut ws = checked_out.unwrap_or_else(|| (self.init)());
        let out = f(&mut ws);
        self.free.lock().expect("workspace pool poisoned").push(ws);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStream;

    #[test]
    fn seeds_are_pure_functions_of_plan() {
        let plan = ReplicationPlan::new(4, 25, 99);
        let again = ReplicationPlan::new(4, 25, 99);
        for i in 0..plan.total() {
            assert_eq!(plan.seed_for(i), again.seed_for(i));
        }
        // Seeds do not depend on the batch split, only on the index.
        let other_split = ReplicationPlan::new(25, 4, 99);
        for i in 0..plan.total() {
            assert_eq!(plan.seed_for(i), other_split.seed_for(i));
        }
    }

    #[test]
    fn namespace_matches_legacy_replication_runner_schedule() {
        // ReplicationRunner historically derived seed i as
        // derive_seed(master, StreamId(0x5EED_0000_0000_0000 ^ i)); the
        // default plan must reproduce that exactly.
        let plan = ReplicationPlan::flat(100, 1234);
        for i in 0..100 {
            assert_eq!(
                plan.seed_for(i),
                derive_seed(1234, StreamId(DEFAULT_STREAM_NAMESPACE ^ u64::from(i)))
            );
        }
    }

    #[test]
    fn additive_namespaces_are_xor_compatible_for_small_indices() {
        // Migrated call sites relied on `base + i` stream ids with base
        // having zero low bits; XOR preserves those schedules for any
        // index below 2^16.
        for base in [0x4E_0000u64, 0xCA_0000] {
            for i in [0u32, 1, 2, 255, 65_535] {
                assert_eq!(base ^ u64::from(i), base + u64::from(i));
            }
        }
    }

    #[test]
    fn serial_equals_parallel() {
        let plan = ReplicationPlan::new(3, 33, 7);
        let task = |rep: Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(1));
            (0..100).map(|_| rng.uniform()).sum::<f64>()
        };
        let serial = Executor::serial().run(&plan, task);
        let parallel = Executor::parallel().run(&plan, task);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batch_ranges_tile_the_plan() {
        let plan = ReplicationPlan::new(4, 5, 0);
        let ranges: Vec<_> = plan.batch_ranges().collect();
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..5);
        assert_eq!(ranges[3], 15..20);
        assert_eq!(plan.batch_of(0), 0);
        assert_eq!(plan.batch_of(4), 0);
        assert_eq!(plan.batch_of(5), 1);
        assert_eq!(plan.batch_of(19), 3);
    }

    #[test]
    fn derived_plans_decorrelate() {
        let base = ReplicationPlan::new(2, 10, 42);
        let a = base.derived(StreamId(0));
        let b = base.derived(StreamId(1));
        assert_ne!(a.master_seed(), b.master_seed());
        assert_eq!(a.batches(), base.batches());
        // Deriving is deterministic.
        assert_eq!(a, base.derived(StreamId(0)));
    }

    #[test]
    fn with_batches_keeps_schedule() {
        let base = ReplicationPlan::new(4, 25, 7).with_namespace(0xAB_0000);
        let grown = base.with_batches(9);
        assert_eq!(grown.batches(), 9);
        assert_eq!(grown.batch_size(), 25);
        assert_eq!(grown.namespace(), base.namespace());
        for i in 0..base.total() {
            assert_eq!(base.seed_for(i), grown.seed_for(i));
        }
    }

    #[test]
    fn mean_collector_averages() {
        let plan = ReplicationPlan::flat(4, 0);
        let mean =
            Executor::serial().collect(&plan, |rep| f64::from(rep.index) + 1.0, &MeanCollector);
        assert!((mean - 2.5).abs() < 1e-12);
    }

    #[test]
    fn vec_collector_round_trips_run() {
        let plan = ReplicationPlan::new(3, 4, 5);
        let direct = Executor::serial().run(&plan, |rep| rep.seed);
        let folded = Executor::serial().collect(&plan, |rep| rep.seed, &VecCollector);
        assert_eq!(direct, folded);
        assert_eq!(direct.len(), 12);
    }

    #[test]
    fn adaptive_truncation_is_bit_identical_to_fixed_plan() {
        // A rule that is never met runs exactly to the cap; the result
        // must equal the fixed plan of the same size, bit for bit.
        let base = ReplicationPlan::new(1, 10, 99);
        let rule = StopRule::relative(1e-9, 10, 40);
        let task = |rep: Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(2));
            rng.uniform()
        };
        for exec in [Executor::serial(), Executor::parallel()] {
            let adaptive = exec.run_adaptive(&base, &rule, task, &MeanCollector, |_, _| None);
            assert_eq!(adaptive.rounds, 4);
            assert_eq!(adaptive.replications, 40);
            assert!(!adaptive.target_met);
            let fixed = exec.collect(&base.with_batches(4), task, &MeanCollector);
            assert_eq!(adaptive.output.to_bits(), fixed.to_bits());
        }
    }

    #[test]
    fn run_ws_is_bit_identical_to_run() {
        let plan = ReplicationPlan::new(3, 17, 13);
        let task = |rep: Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(4));
            (0..50).map(|_| rng.uniform()).sum::<f64>()
        };
        let reference = Executor::serial().run(&plan, task);
        for exec in [Executor::serial(), Executor::parallel()] {
            let ws: Vec<f64> = exec.run_ws(
                &plan,
                || Vec::with_capacity(50),
                |scratch: &mut Vec<f64>, rep| {
                    scratch.clear();
                    let mut rng = RngStream::new(rep.seed, StreamId(4));
                    scratch.extend((0..50).map(|_| rng.uniform()));
                    scratch.iter().sum()
                },
                &VecCollector,
            );
            assert_eq!(
                ws.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn serial_run_ws_reuses_one_workspace() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let created = AtomicU32::new(0);
        let plan = ReplicationPlan::new(4, 8, 0);
        let _ = Executor::serial().run_ws(
            &plan,
            || created.fetch_add(1, Ordering::Relaxed),
            |_, rep| rep.index,
            &VecCollector,
        );
        assert_eq!(created.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn adaptive_ws_keeps_workspaces_across_rounds() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let created = AtomicU32::new(0);
        let base = ReplicationPlan::new(1, 5, 2);
        let rule = StopRule::relative(1e-9, 5, 40);
        let run = Executor::serial().run_adaptive_ws(
            &base,
            &rule,
            || created.fetch_add(1, Ordering::Relaxed),
            |_, rep| f64::from(rep.index),
            &MeanCollector,
            |_, _| None,
        );
        assert_eq!(run.rounds, 8);
        // Eight rounds, one workspace: the pool outlives each round.
        assert_eq!(created.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn adaptive_ws_truncation_matches_plain_adaptive() {
        let base = ReplicationPlan::new(1, 10, 99);
        let rule = StopRule::relative(1e-9, 10, 40);
        let task = |rep: Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(2));
            rng.uniform()
        };
        for exec in [Executor::serial(), Executor::parallel()] {
            let plain = exec.run_adaptive(&base, &rule, task, &MeanCollector, |_, _| None);
            let ws = exec.run_adaptive_ws(
                &base,
                &rule,
                || 0u64,
                |count: &mut u64, rep| {
                    *count += 1;
                    task(rep)
                },
                &MeanCollector,
                |_, _| None,
            );
            assert_eq!(ws.rounds, plain.rounds);
            assert_eq!(ws.output.to_bits(), plain.output.to_bits());
        }
    }

    #[test]
    fn adaptive_stops_when_rule_met() {
        // Constant outputs: the monitor reports a zero-width interval,
        // so the run stops at the first check past min_replications.
        let base = ReplicationPlan::new(1, 5, 3);
        let rule = StopRule::relative(0.05, 12, 100);
        let run = Executor::serial().run_adaptive(
            &base,
            &rule,
            |_| 1.0f64,
            &MeanCollector,
            |acc, n| {
                assert_eq!(u64::from(n), acc.n);
                Some(Precision {
                    estimate: acc.sum / acc.n as f64,
                    half_width: 0.0,
                })
            },
        );
        // min 12 → 3 rounds of 5 before the first check.
        assert_eq!(run.rounds, 3);
        assert_eq!(run.replications, 15);
        assert!(run.target_met);
        assert_eq!(run.precision.unwrap().half_width, 0.0);
        assert_eq!(run.plan.batches(), 3);
        assert!((run.output - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adaptive_respects_replication_cap() {
        let base = ReplicationPlan::new(1, 8, 3);
        // Cap below one round still executes exactly one round.
        let tiny = StopRule::relative(0.5, 1, 4);
        let run =
            Executor::serial().run_adaptive(&base, &tiny, |_| 1.0f64, &MeanCollector, |_, _| None);
        assert_eq!(run.rounds, 1);
        assert_eq!(run.replications, 8);
        // Cap of 3 rounds is never exceeded.
        let capped = StopRule::relative(1e-12, 1, 24);
        let run = Executor::serial().run_adaptive(
            &base,
            &capped,
            |_| 1.0f64,
            &MeanCollector,
            |_, _| {
                Some(Precision {
                    estimate: 0.0,
                    half_width: 1.0,
                })
            },
        );
        assert_eq!(run.rounds, 3);
        assert!(!run.target_met);
    }

    #[test]
    fn precision_relative_half_width() {
        let p = Precision {
            estimate: 2.0,
            half_width: 0.1,
        };
        assert!((p.relative_half_width() - 0.05).abs() < 1e-12);
        let zero = Precision {
            estimate: 0.0,
            half_width: 0.1,
        };
        assert_eq!(zero.relative_half_width(), f64::INFINITY);
        let tight = Precision {
            estimate: 0.0,
            half_width: 0.0,
        };
        assert_eq!(tight.relative_half_width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty batch plan")]
    fn zero_batches_rejected() {
        let _ = ReplicationPlan::new(0, 5, 1);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_plan_rejected() {
        let _ = ReplicationPlan::new(u32::MAX, 2, 1);
    }

    #[test]
    #[should_panic(expected = "0 < min <= max")]
    fn stop_rule_rejects_inverted_bounds() {
        let _ = StopRule::relative(0.05, 10, 5);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn stop_rule_rejects_zero_target() {
        let _ = StopRule::relative(0.0, 1, 10);
    }
}
