//! The unified replication-execution layer.
//!
//! Every Monte-Carlo workload in the workspace — campaign measurement,
//! the DoE design-point sweep, the generic replication harness, the
//! bench experiments — repeats a seeded task many times and aggregates
//! the results. Call sites describe *what* to run with a
//! [`ReplicationPlan`], hand the per-replication task to an
//! [`Executor`], and fold the outputs with a [`Collector`] — a
//! mergeable fold (`empty` / `accumulate` / `merge` / `finish`), so
//! aggregation streams: outcomes fold into accumulators round by round
//! instead of being materialized into one `Vec` of every replication.
//!
//! Three properties hold by construction:
//!
//! * **Determinism** — replication *i* draws its seed from
//!   `(master_seed, namespace ^ i)` regardless of scheduling, and the
//!   fold always accumulates in replication order within a batch and
//!   merges batch accumulators in batch order, so a serial and a
//!   parallel run of the same plan are bit-identical.
//! * **Bounded memory** — the executor materializes at most one batch of
//!   raw outputs at a time; collectors keep O(1) (or O(batches)) state
//!   per metric instead of O(replications).
//! * **Adaptive precision** — [`Executor::run_adaptive`] executes
//!   batch-sized rounds until a [`StopRule`] is met, and because fixed
//!   plans fold through the identical round structure, an adaptive run
//!   stopped after *N* replications is bit-identical to a fixed plan of
//!   *N*.
//! * **Workspace reuse** — [`Executor::run_ws`] (and its adaptive twin
//!   [`Executor::run_adaptive_ws`]) hands every replication a mutable
//!   per-worker *workspace* created by an `init` closure, so tasks can
//!   keep scratch buffers, simulators and other heap state alive across
//!   the replications a worker executes instead of reallocating them
//!   per replication. Seeds and the fold shape are untouched — in fact
//!   `run`/`collect`/`run_adaptive` *are* the workspace path with a unit
//!   workspace — so workspace, serial and parallel runs of the same plan
//!   all stay bit-identical.
//! * **Fault tolerance** — every replication executes unwind-caught. On
//!   the strict paths (`run*`/`collect`) a panic still propagates, so
//!   legacy behavior is unchanged; on the budgeted paths
//!   ([`Executor::run_ws_budgeted`] / [`Executor::run_ws_checked`] and
//!   their adaptive twins) a failed replication is *recorded* as a
//!   [`ReplicationFailure`] (index, seed, attempt count, cause) instead
//!   of poisoning the batch, optionally retried from its own seed by a
//!   [`RetryPolicy`], and the run returns a [`PartialRun`]: the merged
//!   accumulators over every replication that did complete. Because
//!   seeds are a pure function of `(master_seed, namespace ^ index)`,
//!   surviving replications are bit-identical to a fault-free run, and a
//!   run truncated by a [`Budget`] (replication cap, wall-clock
//!   deadline, or a cooperative [`CancelToken`], all checked at round
//!   boundaries) after *N* rounds is bit-identical to the fixed plan of
//!   *N* rounds over the completed indices.

use crate::rng::{derive_seed, StreamId};
use rayon::prelude::*;
use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The default stream namespace for replication seeds (shared with the
/// historical `ReplicationRunner` schedule so existing experiments keep
/// their exact random sequences).
pub const DEFAULT_STREAM_NAMESPACE: u64 = 0x5EED_0000_0000_0000;

/// One replication of a plan: its index and derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replication {
    /// Replication index in `0..plan.total()`, local to the plan. For a
    /// shard plan (see [`ReplicationPlan::with_first_batch`]) the seed
    /// belongs to the *global* index
    /// `plan.first_replication() + index`.
    pub index: u32,
    /// The seed this replication must use.
    pub seed: u64,
}

/// A structurally invalid [`ReplicationPlan`] or [`StopRule`]
/// configuration, reported by the `try_*` constructors.
///
/// The panicking constructors (`ReplicationPlan::new`,
/// `StopRule::relative`, …) delegate to the `try_*` forms and panic with
/// exactly these messages, so callers that validate user input get typed
/// errors while internal call sites with proven-valid arguments keep
/// their terse form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// `batches` or `batch_size` was zero.
    EmptyPlan,
    /// `batches × batch_size` does not fit in `u32`.
    ReplicationOverflow,
    /// A relative half-width target that is NaN, infinite, zero or
    /// negative.
    NonPositiveTarget,
    /// Replication bounds with `min > max` or a zero cap.
    InvalidBounds,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::EmptyPlan => {
                write!(
                    f,
                    "non-empty batch plan required (batches and batch size must be positive)"
                )
            }
            PlanError::ReplicationOverflow => write!(f, "replication count overflows u32"),
            PlanError::NonPositiveTarget => {
                write!(f, "relative half-width target must be finite and positive")
            }
            PlanError::InvalidBounds => {
                write!(f, "replication bounds must satisfy 0 < min <= max")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Describes a replicated experiment: how many replications, how they
/// group into batches (the ANOVA replicate unit and the adaptive round
/// size), and how each replication's seed derives from the master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationPlan {
    batches: u32,
    batch_size: u32,
    master_seed: u64,
    namespace: u64,
    /// Global index of the plan's first batch. Zero for a whole run; a
    /// *shard* of a larger run sets it so seeds derive from global
    /// replication indices (`first_batch × batch_size + local index`).
    first_batch: u32,
}

impl ReplicationPlan {
    /// Creates a plan of `batches × batch_size` replications, rejecting
    /// empty and overflowing shapes with a typed error.
    pub fn try_new(batches: u32, batch_size: u32, master_seed: u64) -> Result<Self, PlanError> {
        if batches == 0 || batch_size == 0 {
            return Err(PlanError::EmptyPlan);
        }
        if batches.checked_mul(batch_size).is_none() {
            return Err(PlanError::ReplicationOverflow);
        }
        Ok(ReplicationPlan {
            batches,
            batch_size,
            master_seed,
            namespace: DEFAULT_STREAM_NAMESPACE,
            first_batch: 0,
        })
    }

    /// Creates a plan of `batches × batch_size` replications.
    ///
    /// # Panics
    ///
    /// Panics if `batches` or `batch_size` is zero, or if the total
    /// replication count overflows `u32`. Use
    /// [`ReplicationPlan::try_new`] to validate untrusted configuration.
    #[must_use]
    pub fn new(batches: u32, batch_size: u32, master_seed: u64) -> Self {
        match ReplicationPlan::try_new(batches, batch_size, master_seed) {
            Ok(plan) => plan,
            Err(err) => panic!("{err}"),
        }
    }

    /// Creates an unbatched plan: one batch of `replications`.
    ///
    /// # Panics
    ///
    /// Panics if `replications` is zero.
    #[must_use]
    pub fn flat(replications: u32, master_seed: u64) -> Self {
        ReplicationPlan::new(1, replications, master_seed)
    }

    /// The validating form of [`ReplicationPlan::flat`].
    pub fn try_flat(replications: u32, master_seed: u64) -> Result<Self, PlanError> {
        ReplicationPlan::try_new(1, replications, master_seed)
    }

    /// Replaces the stream namespace seeds are derived under. Call sites
    /// migrated from hand-rolled loops use this to keep their historical
    /// seed schedules.
    #[must_use]
    pub const fn with_namespace(mut self, namespace: u64) -> Self {
        self.namespace = namespace;
        self
    }

    /// Replaces the batch count, keeping batch size, master seed and
    /// namespace. Seeds depend only on the replication index, so the
    /// first `min(total, other.total)` replications of the two plans are
    /// identical — this is how an adaptive run names the fixed plan it
    /// actually executed.
    ///
    /// # Panics
    ///
    /// Panics if `batches` is zero or the total (including the shard
    /// offset, if any) overflows `u32`.
    #[must_use]
    pub fn with_batches(self, batches: u32) -> Self {
        let rebatched = ReplicationPlan::try_new(batches, self.batch_size, self.master_seed)
            .and_then(|plan| {
                plan.with_namespace(self.namespace)
                    .try_with_first_batch(self.first_batch)
            });
        match rebatched {
            Ok(plan) => plan,
            Err(err) => panic!("{err}"),
        }
    }

    /// Re-bases the plan as a **shard** of a larger run: its batches
    /// cover global batch indices `first_batch..first_batch + batches`,
    /// and every seed derives from the *global* replication index
    /// (`first_batch × batch_size + local index`) under the same
    /// `namespace ^ index` schedule. Replications of a whole run and of
    /// any tiling of it into shards therefore draw identical seeds, so
    /// shard results merged in global batch order are bit-identical to
    /// the single-machine run — regardless of which executor, machine,
    /// or retry attempt produced each shard.
    ///
    /// Rejects offsets whose last global replication index would
    /// overflow `u32` with [`PlanError::ReplicationOverflow`].
    pub fn try_with_first_batch(mut self, first_batch: u32) -> Result<Self, PlanError> {
        match first_batch
            .checked_add(self.batches)
            .and_then(|end| end.checked_mul(self.batch_size))
        {
            Some(_) => {
                self.first_batch = first_batch;
                Ok(self)
            }
            None => Err(PlanError::ReplicationOverflow),
        }
    }

    /// The panicking form of [`ReplicationPlan::try_with_first_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the shard's last global replication index overflows
    /// `u32`.
    #[must_use]
    pub fn with_first_batch(self, first_batch: u32) -> Self {
        match self.try_with_first_batch(first_batch) {
            Ok(plan) => plan,
            Err(err) => panic!("{err}"),
        }
    }

    /// Global index of the plan's first batch (zero unless the plan is a
    /// shard — see [`ReplicationPlan::with_first_batch`]).
    #[must_use]
    pub fn first_batch(&self) -> u32 {
        self.first_batch
    }

    /// Global index of the plan's first replication
    /// (`first_batch × batch_size`).
    #[must_use]
    pub fn first_replication(&self) -> u32 {
        self.first_batch * self.batch_size
    }

    /// Derives a sub-plan whose master seed is drawn from this plan's
    /// seed and `stream` — the idiom for giving each design point of a
    /// sweep its own decorrelated seed schedule.
    #[must_use]
    pub fn derived(self, stream: StreamId) -> Self {
        ReplicationPlan {
            master_seed: derive_seed(self.master_seed, stream),
            ..self
        }
    }

    /// The number of replicate batches.
    #[must_use]
    pub fn batches(&self) -> u32 {
        self.batches
    }

    /// Replications per batch.
    #[must_use]
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Total replications (`batches × batch_size`).
    #[must_use]
    pub fn total(&self) -> u32 {
        self.batches * self.batch_size
    }

    /// The master seed.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The stream namespace.
    #[must_use]
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// The batch a replication index belongs to.
    #[must_use]
    pub fn batch_of(&self, index: u32) -> u32 {
        index / self.batch_size
    }

    /// The stream identifier of (local) replication `index` — derived
    /// from the **global** index `first_replication() + index`, so a
    /// shard draws exactly the streams the whole run would have drawn
    /// at its position.
    #[must_use]
    pub fn stream_id(&self, index: u32) -> StreamId {
        StreamId(self.namespace ^ (u64::from(self.first_replication()) + u64::from(index)))
    }

    /// The seed of replication `index` — a pure function of
    /// `(master_seed, namespace, global index)`, independent of
    /// scheduling and of the batch count.
    #[must_use]
    pub fn seed_for(&self, index: u32) -> u64 {
        derive_seed(self.master_seed, self.stream_id(index))
    }

    /// The [`Replication`] descriptor for `index`.
    #[must_use]
    pub fn replication(&self, index: u32) -> Replication {
        Replication {
            index,
            seed: self.seed_for(index),
        }
    }

    /// Iterates the index ranges of each batch (for collectors that
    /// aggregate per replicate group).
    pub fn batch_ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        let size = self.batch_size as usize;
        (0..self.batches as usize).map(move |b| b * size..(b + 1) * size)
    }
}

/// How an [`Executor`] schedules replications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One after another on the calling thread.
    Serial,
    /// Work-shared across all available cores.
    #[default]
    Parallel,
}

/// Folds per-replication outputs into an aggregate, mergeably.
///
/// A collector is a fold the executor drives: it creates [`empty`]
/// accumulators, [`accumulate`]s one replication's output at a time (in
/// replication order within a batch), [`merge`]s partial accumulators
/// (in batch order), and [`finish`]es the final accumulator into the
/// output. Because partial accumulators combine, parallel workers and
/// adaptive rounds never have to materialize a `Vec` of every
/// replication — state stays O(1) (or O(batches)) per metric.
///
/// The executor guarantees a *fixed fold shape*: one accumulator per
/// batch, filled in replication order, merged into the running
/// accumulator in batch order. Any collector whose `accumulate`/`merge`
/// follow from that shape therefore produces bit-identical output on
/// serial and parallel executors, and on adaptive runs truncated to the
/// same replication count.
///
/// [`empty`]: Collector::empty
/// [`accumulate`]: Collector::accumulate
/// [`merge`]: Collector::merge
/// [`finish`]: Collector::finish
pub trait Collector<T> {
    /// The intermediate, mergeable accumulator.
    type Accum: Send;
    /// The aggregated result type.
    type Output;

    /// A fresh accumulator with nothing folded in.
    fn empty(&self) -> Self::Accum;

    /// Folds one replication's output into `acc`. `plan` carries the
    /// batch structure (`plan.batch_of(rep.index)` is the replicate
    /// group); outputs of a batch arrive in replication order.
    fn accumulate(&self, plan: &ReplicationPlan, acc: &mut Self::Accum, rep: Replication, value: T);

    /// Merges `other` into `into`. `other` always covers a replication
    /// range strictly after everything already folded into `into`.
    fn merge(&self, into: &mut Self::Accum, other: Self::Accum);

    /// Turns the final accumulator into the output. `plan` describes
    /// exactly the replications that were folded (for an adaptive run,
    /// the effective plan of the rounds actually executed).
    fn finish(&self, plan: &ReplicationPlan, acc: Self::Accum) -> Self::Output;
}

/// A [`Collector`] materializing every output in replication order — the
/// compatibility shape for callers that genuinely need raw outcomes
/// (e.g. campaign post-mortems). Memory is O(replications); prefer a
/// streaming collector on hot paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct VecCollector;

impl<T: Send> Collector<T> for VecCollector {
    type Accum = Vec<T>;
    type Output = Vec<T>;

    fn empty(&self) -> Vec<T> {
        Vec::new()
    }

    fn accumulate(&self, _plan: &ReplicationPlan, acc: &mut Vec<T>, _rep: Replication, value: T) {
        acc.push(value);
    }

    fn merge(&self, into: &mut Vec<T>, mut other: Vec<T>) {
        // The first round of a flat plan merges into an empty
        // accumulator: adopt the buffer instead of re-copying it.
        if into.is_empty() {
            *into = other;
        } else {
            into.append(&mut other);
        }
    }

    fn finish(&self, _plan: &ReplicationPlan, acc: Vec<T>) -> Vec<T> {
        acc
    }
}

/// A replication task that can advance a whole lane group in lockstep —
/// the contract behind [`Executor::run_ws_lockstep`].
///
/// The defining invariant is **batched ≡ scalar per lane**: for any
/// replication `r`, the output `run_batch` produces for `r`'s lane must
/// be bit-identical to `run_scalar(ws, r)`, regardless of which other
/// replications share the batch. Given that, every partition of a plan
/// into lane groups — any lane width, any remainder handling, serial or
/// parallel scheduling — produces identical per-replication outputs,
/// which is what keeps the lockstep executor path inside the
/// deterministic seed-schedule contract of [`Executor::run_ws`].
pub trait BatchTask: Sync {
    /// Reusable per-worker scratch state, holding the lane-major
    /// buffers of up to one lane group.
    type Workspace: Send;
    /// One replication's output.
    type Output: Send;

    /// A fresh per-worker workspace.
    fn workspace(&self) -> Self::Workspace;

    /// Runs one replication on the scalar path — the degradation target
    /// for remainder lanes.
    fn run_scalar(&self, ws: &mut Self::Workspace, rep: Replication) -> Self::Output;

    /// Advances every replication of `reps` simultaneously, one step at
    /// a time, appending one output per replication to `out` in
    /// replication order. Each lane must draw exactly the scalar
    /// schedule for its seed.
    fn run_batch(
        &self,
        ws: &mut Self::Workspace,
        reps: &[Replication],
        out: &mut Vec<Self::Output>,
    );
}

/// A [`Collector`] computing the mean of scalar outputs in O(1) memory —
/// the common case for quick probability estimates.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanCollector;

/// Running state of [`MeanCollector`]: count and sum.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanAccum {
    n: u64,
    sum: f64,
}

impl Collector<f64> for MeanCollector {
    type Accum = MeanAccum;
    type Output = f64;

    fn empty(&self) -> MeanAccum {
        MeanAccum::default()
    }

    fn accumulate(&self, _plan: &ReplicationPlan, acc: &mut MeanAccum, _rep: Replication, x: f64) {
        acc.n += 1;
        acc.sum += x;
    }

    fn merge(&self, into: &mut MeanAccum, other: MeanAccum) {
        into.n += other.n;
        into.sum += other.sum;
    }

    fn finish(&self, _plan: &ReplicationPlan, acc: MeanAccum) -> f64 {
        assert!(acc.n > 0, "mean of zero replications");
        acc.sum / acc.n as f64
    }
}

/// A point estimate with its confidence-interval half-width — what a
/// [`StopRule`] judges. Produced by the *monitor* closure of
/// [`Executor::run_adaptive`] (typically from a streaming accumulator's
/// moment-based interval).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Precision {
    /// Current point estimate of the monitored response.
    pub estimate: f64,
    /// Half-width of its confidence interval.
    pub half_width: f64,
}

impl Precision {
    /// The half-width relative to the estimate's magnitude
    /// (`+inf` when the estimate is zero but the interval is not tight).
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.estimate == 0.0 {
            if self.half_width == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.half_width / self.estimate.abs()
        }
    }
}

/// When an adaptive run may stop: the monitored response's relative
/// confidence-interval half-width must drop to `relative_half_width`,
/// subject to replication bounds.
///
/// Bounds are rounded to whole batch-sized rounds: the run never checks
/// the rule before `min_replications` and never exceeds
/// `max_replications` (rounded *down* to whole rounds, so the cap is
/// strict; at least one round always executes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    /// Target relative CI half-width ε: stop once
    /// `half_width ≤ ε × |estimate|`.
    pub relative_half_width: f64,
    /// Replications that must complete before the rule is consulted.
    pub min_replications: u32,
    /// Hard replication cap (the run stops here even if the target was
    /// never met).
    pub max_replications: u32,
}

impl StopRule {
    /// A relative-precision rule, rejecting non-finite or non-positive
    /// targets and inverted or empty replication bounds with a typed
    /// error.
    pub fn try_relative(
        relative_half_width: f64,
        min_replications: u32,
        max_replications: u32,
    ) -> Result<Self, PlanError> {
        if !(relative_half_width.is_finite() && relative_half_width > 0.0) {
            return Err(PlanError::NonPositiveTarget);
        }
        if min_replications > max_replications || max_replications == 0 {
            return Err(PlanError::InvalidBounds);
        }
        Ok(StopRule {
            relative_half_width,
            min_replications,
            max_replications,
        })
    }

    /// A relative-precision rule.
    ///
    /// # Panics
    ///
    /// Panics unless `relative_half_width` is finite and positive and
    /// `min_replications ≤ max_replications` with a non-zero cap. Use
    /// [`StopRule::try_relative`] to validate untrusted configuration.
    #[must_use]
    pub fn relative(
        relative_half_width: f64,
        min_replications: u32,
        max_replications: u32,
    ) -> Self {
        match StopRule::try_relative(relative_half_width, min_replications, max_replications) {
            Ok(rule) => rule,
            Err(err) => panic!("{err}"),
        }
    }

    /// Whether `precision` meets the target.
    #[must_use]
    pub fn is_met(&self, precision: &Precision) -> bool {
        precision.half_width <= self.relative_half_width * precision.estimate.abs()
    }
}

/// Result of an [`Executor::run_adaptive`] call.
#[derive(Debug, Clone)]
pub struct AdaptiveRun<O> {
    /// The collector's output over the replications actually executed.
    pub output: O,
    /// The effective fixed plan this run is bit-identical to
    /// (`rounds × batch_size` replications under the base plan's seed
    /// schedule).
    pub plan: ReplicationPlan,
    /// Batch-sized rounds executed.
    pub rounds: u32,
    /// Replications executed (`rounds × batch_size`).
    pub replications: u32,
    /// Whether the stop rule's precision target was met (as opposed to
    /// hitting the replication cap).
    pub target_met: bool,
    /// The monitored response's precision at the final check, if the
    /// monitor could compute one.
    pub precision: Option<Precision>,
}

/// A cooperative cancellation flag shared between a run and whoever may
/// want to stop it (another thread, a signal handler, a serving layer's
/// admission controller).
///
/// Cancellation is *cooperative*: the executor checks the token at
/// round (batch) boundaries, finishes the round in flight, and returns
/// the merged accumulators so far as a [`PartialRun`] — replications
/// are never killed mid-trajectory, so everything already folded stays
/// bit-identical to an uncancelled run of the same length.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Caps how much work a run may perform: a replication ceiling, a
/// wall-clock deadline, a cancellation token — any combination, all
/// enforced at round (batch) boundaries.
///
/// A budget never truncates *inside* a round: before starting round
/// `r`, the executor asks whether the `(r + 1) × batch_size`-th
/// replication is still affordable and whether the deadline or token
/// has tripped. The replication cap is therefore strict (rounded *down*
/// to whole rounds, so a cap below one round executes zero rounds), and
/// a budget-truncated run is always bit-identical to the fixed plan of
/// the rounds it completed.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    max_replications: Option<u32>,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget that never stops a run — the strict paths' implicit
    /// policy.
    #[must_use]
    pub const fn unlimited() -> Self {
        Budget {
            max_replications: None,
            deadline: None,
            cancel: None,
        }
    }

    /// Caps the run at `cap` replications (floored to whole rounds).
    #[must_use]
    pub const fn with_max_replications(mut self, cap: u32) -> Self {
        self.max_replications = Some(cap);
        self
    }

    /// Stops the run at the first round boundary at or past `deadline`
    /// from the moment the run started.
    #[must_use]
    pub const fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token, checked at round boundaries.
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Whether this budget can never stop a run.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_replications.is_none() && self.deadline.is_none() && self.cancel.is_none()
    }

    /// Why work must stop *before* executing a unit that would bring the
    /// completed-replication total to `replications_after_next`, or
    /// `None` if the budget still affords it. `started` is the instant
    /// the run began (deadline checks are relative to it). Checks are
    /// ordered cancellation → deadline → replication cap, so a run
    /// reports the most externally urgent reason.
    #[must_use]
    pub fn stop_reason(
        &self,
        started: Instant,
        replications_after_next: u32,
    ) -> Option<BudgetOutcome> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(BudgetOutcome::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if started.elapsed() >= deadline {
                return Some(BudgetOutcome::DeadlineExpired);
            }
        }
        if let Some(cap) = self.max_replications {
            if replications_after_next > cap {
                return Some(BudgetOutcome::ReplicationBudget);
            }
        }
        None
    }
}

/// Why a run ended. Carried by [`PartialRun::budget_outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetOutcome {
    /// A fixed plan ran every round.
    Completed,
    /// An adaptive run met its precision target.
    PrecisionMet,
    /// An adaptive run reached its [`StopRule`] replication cap without
    /// meeting the target — the rule's own honest stopping point, not a
    /// truncation.
    RuleCapped,
    /// The [`Budget`] replication ceiling cut the run short.
    ReplicationBudget,
    /// The wall-clock deadline expired.
    DeadlineExpired,
    /// The [`CancelToken`] was triggered.
    Cancelled,
}

impl BudgetOutcome {
    /// Whether the run was cut short by an external budget rather than
    /// finishing on its own terms (plan exhausted, precision met, or
    /// rule cap reached).
    #[must_use]
    pub const fn is_truncation(&self) -> bool {
        matches!(
            self,
            BudgetOutcome::ReplicationBudget
                | BudgetOutcome::DeadlineExpired
                | BudgetOutcome::Cancelled
        )
    }
}

impl std::fmt::Display for BudgetOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label = match self {
            BudgetOutcome::Completed => "completed",
            BudgetOutcome::PrecisionMet => "precision met",
            BudgetOutcome::RuleCapped => "rule cap",
            BudgetOutcome::ReplicationBudget => "replication budget",
            BudgetOutcome::DeadlineExpired => "deadline expired",
            BudgetOutcome::Cancelled => "cancelled",
        };
        f.write_str(label)
    }
}

/// How retry attempts re-derive a failed replication's seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reseed {
    /// Every attempt re-runs the replication's own plan seed — the
    /// right policy for transient *environmental* faults, and the one
    /// that makes a successful retry bit-identical to a fault-free run
    /// (same seed → same draw schedule → same trajectory).
    SameSeed,
    /// Attempt `k > 0` derives `derive_seed(base, salt ^ k)` — an escape
    /// hatch for faults that are *deterministic in the seed* (a
    /// trajectory that always trips the same bug), trading bit-identity
    /// for availability. The salt keeps retry streams disjoint from
    /// every plan namespace.
    AttemptSalt(u64),
}

/// Bounded, deterministic re-execution of failed replications.
///
/// Retries run *inline* in the worker that owns the replication, before
/// its slot in the fold, so the fold shape — and therefore serial ≡
/// parallel bit-identity — is untouched no matter how many attempts a
/// replication needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    reseed: Reseed,
}

impl RetryPolicy {
    /// No retries: one attempt per replication.
    #[must_use]
    pub const fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            reseed: Reseed::SameSeed,
        }
    }

    /// Up to `retries` re-attempts after the first failure, each from
    /// the replication's own seed ([`Reseed::SameSeed`]).
    #[must_use]
    pub const fn retries(retries: u32) -> Self {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            reseed: Reseed::SameSeed,
        }
    }

    /// Switches re-attempts to [`Reseed::AttemptSalt`] with `salt`.
    #[must_use]
    pub const fn with_reseed_salt(mut self, salt: u64) -> Self {
        self.reseed = Reseed::AttemptSalt(salt);
        self
    }

    /// Total attempts allowed per replication (first run included);
    /// always at least one.
    #[must_use]
    pub const fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The reseeding policy for attempts after the first.
    #[must_use]
    pub const fn reseed(&self) -> Reseed {
        self.reseed
    }

    /// The seed attempt `attempt` (zero-based) runs under, given the
    /// replication's plan seed.
    #[must_use]
    pub fn seed_for_attempt(&self, base_seed: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            return base_seed;
        }
        match self.reseed {
            Reseed::SameSeed => base_seed,
            Reseed::AttemptSalt(salt) => {
                derive_seed(base_seed, StreamId(salt ^ u64::from(attempt)))
            }
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Everything a budgeted run needs to know about *how* to be resilient:
/// the retry policy for failed replications and the budget bounding the
/// whole run. The default policy (no retries, unlimited budget) makes
/// [`Executor::run_ws_budgeted`] behave like [`Executor::run_ws`]
/// except that failures degrade the result instead of panicking.
#[derive(Debug, Clone, Default)]
pub struct RunPolicy {
    /// Re-execution policy for failed replications.
    pub retry: RetryPolicy,
    /// Work bounds checked at round boundaries.
    pub budget: Budget,
}

impl RunPolicy {
    /// No retries, unlimited budget.
    #[must_use]
    pub const fn new() -> Self {
        RunPolicy {
            retry: RetryPolicy::none(),
            budget: Budget::unlimited(),
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub const fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// Why a replication failed its final attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The task panicked; the message is the stringified payload.
    Panicked(String),
    /// The task returned, but the run's validator rejected the output
    /// (e.g. a non-finite reward).
    InvalidOutput,
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Panicked(message) => write!(f, "panicked: {message}"),
            FailureCause::InvalidOutput => write!(f, "output rejected by validator"),
        }
    }
}

/// One replication that exhausted its attempts without producing an
/// accepted output. The seed recorded is the *first* attempt's (the
/// plan seed), so a failure is always re-runnable in isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationFailure {
    /// Replication index in the plan.
    pub index: u32,
    /// The plan seed of the replication (attempt 0).
    pub seed: u64,
    /// Attempts consumed (≥ 1).
    pub attempts: u32,
    /// What went wrong on the last attempt.
    pub cause: FailureCause,
}

impl std::fmt::Display for ReplicationFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replication {} (seed {:#018x}) failed after {} attempt(s): {}",
            self.index, self.seed, self.attempts, self.cause
        )
    }
}

/// The gracefully degraded result of a budgeted run: whatever the
/// collector folded over the replications that completed, plus an
/// honest account of what did not.
///
/// Two invariants make a partial result trustworthy:
///
/// * **Survivor bit-identity** — seeds are pure functions of the index,
///   so every completed replication's contribution is bit-identical to
///   the same replication in a fault-free run.
/// * **Truncation bit-identity** — budgets only stop at round
///   boundaries, so a run truncated after `rounds` rounds with no
///   failures has `output` bit-identical to the fixed plan
///   `plan.with_batches(rounds)`.
#[derive(Debug, Clone)]
pub struct PartialRun<O> {
    /// The collector's output over completed replications, or `None` if
    /// nothing completed (zero affordable rounds, or every replication
    /// failed).
    pub output: Option<O>,
    /// The effective fixed plan of the rounds actually executed
    /// (`rounds` batches; the base plan when `rounds` is zero).
    pub plan: ReplicationPlan,
    /// Batch-sized rounds executed.
    pub rounds: u32,
    /// Replications attempted (`rounds × batch_size`).
    pub attempted: u32,
    /// Replications that produced an accepted output.
    pub completed: u32,
    /// Replications that exhausted their attempts, in replication
    /// order (deterministic: the order is part of the fold shape).
    pub failed: Vec<ReplicationFailure>,
    /// Why the run ended.
    pub budget_outcome: BudgetOutcome,
    /// The monitored response's precision at the last check (adaptive
    /// runs only).
    pub precision: Option<Precision>,
}

impl<O> PartialRun<O> {
    /// Whether the result is degraded: some replications failed, or an
    /// external budget truncated the run.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.failed.is_empty() || self.budget_outcome.is_truncation()
    }

    /// The output, if any replication completed.
    #[must_use]
    pub fn output(&self) -> Option<&O> {
        self.output.as_ref()
    }
}

/// The validator that accepts every output — the policy of the plain
/// budgeted paths, where only panics count as failures.
pub fn accept_all<T>(_value: &T) -> bool {
    true
}

/// Internal failure record of one replication's attempt loop: the
/// public failure plus, for strict paths, the original panic payload so
/// `resume_unwind` preserves it exactly. Boxed so the hot `Result` stays
/// one pointer wide on the error side.
struct TaskError {
    failure: ReplicationFailure,
    payload: Option<Box<dyn Any + Send>>,
}

/// Runs one replication through its bounded attempt loop: catch the
/// unwind, validate the output, retry per policy. The workspace is
/// checked out *inside* the catch, so a panicking replication's
/// workspace is dropped mid-unwind and never recycled half-mutated; a
/// retry checks out (or lazily creates) a fresh one.
fn attempt_replication<W, T, I, F, V>(
    plan: &ReplicationPlan,
    index: u32,
    pool: &WorkspacePool<'_, W, I>,
    task: &F,
    validate: &V,
    retry: &RetryPolicy,
) -> Result<T, Box<TaskError>>
where
    W: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, Replication) -> T + Sync + Send,
    V: Fn(&T) -> bool + Sync,
{
    let base_seed = plan.seed_for(index);
    let mut last: Option<Box<TaskError>> = None;
    for attempt in 0..retry.max_attempts() {
        let rep = Replication {
            index,
            seed: retry.seed_for_attempt(base_seed, attempt),
        };
        // AssertUnwindSafe: on Err every value the closure touched (the
        // checked-out workspace, the task's locals) is dropped during
        // the unwind — nothing partially-mutated is observed afterwards.
        match catch_unwind(AssertUnwindSafe(|| pool.with(|ws| task(ws, rep)))) {
            Ok(value) if validate(&value) => return Ok(value),
            Ok(_) => {
                last = Some(Box::new(TaskError {
                    failure: ReplicationFailure {
                        index,
                        seed: base_seed,
                        attempts: attempt + 1,
                        cause: FailureCause::InvalidOutput,
                    },
                    payload: None,
                }));
            }
            Err(payload) => {
                last = Some(Box::new(TaskError {
                    failure: ReplicationFailure {
                        index,
                        seed: base_seed,
                        attempts: attempt + 1,
                        cause: FailureCause::Panicked(crate::faults::panic_message(
                            payload.as_ref(),
                        )),
                    },
                    payload: Some(payload),
                }));
            }
        }
    }
    match last {
        Some(err) => Err(err),
        None => unreachable!("RetryPolicy guarantees at least one attempt"),
    }
}

/// Assembles a [`PartialRun`] from a finished round loop. `finish` is
/// only invoked when at least one replication completed, so collectors
/// keep their "non-empty fold" invariant even under total failure.
#[allow(clippy::too_many_arguments)]
fn finish_partial<T, C: Collector<T>>(
    plan: &ReplicationPlan,
    collector: &C,
    acc: C::Accum,
    rounds: u32,
    completed: u32,
    failed: Vec<ReplicationFailure>,
    budget_outcome: BudgetOutcome,
    precision: Option<Precision>,
) -> PartialRun<C::Output> {
    let effective = if rounds > 0 {
        plan.with_batches(rounds)
    } else {
        *plan
    };
    let output = (completed > 0).then(|| collector.finish(&effective, acc));
    PartialRun {
        output,
        plan: effective,
        rounds,
        attempted: rounds * plan.batch_size(),
        completed,
        failed,
        budget_outcome,
        precision,
    }
}

/// Strict paths re-raise the first failure exactly as if it had never
/// been caught; budgeted paths record it and move on.
// The Box keeps the per-replication `Result` one word wide on the hot
// success path; this cold sink consumes it as-is.
#[allow(clippy::boxed_local)]
fn record_or_propagate(err: Box<TaskError>, strict: bool, failed: &mut Vec<ReplicationFailure>) {
    if strict {
        match err.payload {
            Some(payload) => resume_unwind(payload),
            None => panic!("{}", err.failure),
        }
    }
    failed.push(err.failure);
}

/// Runs the replications of a [`ReplicationPlan`].
///
/// The executor owns scheduling *only*: seeds come from the plan, and
/// the fold shape (accumulate in replication order within a batch, merge
/// batch accumulators in batch order) is fixed, so every mode produces
/// identical results.
///
/// # Examples
///
/// ```
/// use diversify_des::exec::{Executor, ReplicationPlan};
///
/// let plan = ReplicationPlan::flat(100, 42);
/// let serial: Vec<u64> = Executor::serial().run(&plan, |rep| rep.seed % 97);
/// let parallel: Vec<u64> = Executor::parallel().run(&plan, |rep| rep.seed % 97);
/// assert_eq!(serial, parallel);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Executor {
    mode: ExecMode,
}

impl Executor {
    /// An executor with the given mode.
    #[must_use]
    pub const fn new(mode: ExecMode) -> Self {
        Executor { mode }
    }

    /// A serial executor.
    #[must_use]
    pub const fn serial() -> Self {
        Executor {
            mode: ExecMode::Serial,
        }
    }

    /// A parallel executor.
    #[must_use]
    pub const fn parallel() -> Self {
        Executor {
            mode: ExecMode::Parallel,
        }
    }

    /// The scheduling mode.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Executes one batch-sized round (`round` is the batch index) and
    /// folds its ordered outputs into a fresh accumulator. A serial
    /// round folds each output as it is produced; a parallel round
    /// materializes the round's outcomes (the only buffered vector, so
    /// peak memory is O(batch_size) regardless of how many rounds run)
    /// and folds them in replication order — the accumulate order is
    /// identical either way. Every replication borrows a workspace from
    /// `pool` for the duration of each attempt, runs unwind-caught, and
    /// is retried per `retry`; failures either re-raise (`strict`) or
    /// are recorded in `failed` in replication order, so the fold shape
    /// is fixed even under faults.
    #[allow(clippy::too_many_arguments)]
    fn round_accum<W, T, I, F, C, V>(
        &self,
        plan: &ReplicationPlan,
        round: u32,
        pool: &WorkspacePool<'_, W, I>,
        task: &F,
        collector: &C,
        validate: &V,
        retry: &RetryPolicy,
        strict: bool,
        completed: &mut u32,
        failed: &mut Vec<ReplicationFailure>,
    ) -> C::Accum
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
        V: Fn(&T) -> bool + Sync,
    {
        let start = round * plan.batch_size();
        let indices = start..start + plan.batch_size();
        let mut acc = collector.empty();
        match self.mode {
            ExecMode::Serial => {
                for i in indices {
                    match attempt_replication(plan, i, pool, task, validate, retry) {
                        Ok(value) => {
                            collector.accumulate(plan, &mut acc, plan.replication(i), value);
                            *completed += 1;
                        }
                        Err(err) => record_or_propagate(err, strict, failed),
                    }
                }
            }
            ExecMode::Parallel => {
                let outcomes: Vec<Result<T, Box<TaskError>>> = indices
                    .into_par_iter()
                    .map(|i| attempt_replication(plan, i, pool, task, validate, retry))
                    .collect();
                for (offset, outcome) in outcomes.into_iter().enumerate() {
                    let rep = plan.replication(start + offset as u32);
                    match outcome {
                        Ok(value) => {
                            collector.accumulate(plan, &mut acc, rep, value);
                            *completed += 1;
                        }
                        Err(err) => record_or_propagate(err, strict, failed),
                    }
                }
            }
        }
        acc
    }

    /// The fixed-plan driver behind both the strict and the budgeted
    /// workspace paths.
    #[allow(clippy::too_many_arguments)]
    fn run_fixed_ft<W, T, I, F, C, V>(
        &self,
        plan: &ReplicationPlan,
        init: I,
        task: F,
        collector: &C,
        policy: &RunPolicy,
        validate: V,
        strict: bool,
    ) -> PartialRun<C::Output>
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
        V: Fn(&T) -> bool + Sync,
    {
        let pool = WorkspacePool::new(&init);
        let started = Instant::now();
        let mut acc = collector.empty();
        let mut failed = Vec::new();
        let mut completed = 0u32;
        let mut rounds = 0u32;
        let mut budget_outcome = BudgetOutcome::Completed;
        while rounds < plan.batches() {
            if let Some(stop) = policy
                .budget
                .stop_reason(started, (rounds + 1) * plan.batch_size())
            {
                budget_outcome = stop;
                break;
            }
            let partial = self.round_accum(
                plan,
                rounds,
                &pool,
                &task,
                collector,
                &validate,
                &policy.retry,
                strict,
                &mut completed,
                &mut failed,
            );
            collector.merge(&mut acc, partial);
            rounds += 1;
        }
        finish_partial(
            plan,
            collector,
            acc,
            rounds,
            completed,
            failed,
            budget_outcome,
            None,
        )
    }

    /// The adaptive driver behind both the strict and the budgeted
    /// adaptive workspace paths.
    #[allow(clippy::too_many_arguments)]
    fn run_adaptive_ft<W, T, I, F, C, M, V>(
        &self,
        plan: &ReplicationPlan,
        rule: &StopRule,
        init: I,
        task: F,
        collector: &C,
        monitor: M,
        policy: &RunPolicy,
        validate: V,
        strict: bool,
    ) -> PartialRun<C::Output>
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
        M: Fn(&C::Accum, u32) -> Option<Precision>,
        V: Fn(&T) -> bool + Sync,
    {
        let pool = WorkspacePool::new(&init);
        let started = Instant::now();
        let batch = plan.batch_size();
        let max_rounds = (rule.max_replications / batch).max(1);
        let min_rounds = rule.min_replications.div_ceil(batch).clamp(1, max_rounds);
        let mut acc = collector.empty();
        let mut failed = Vec::new();
        let mut completed = 0u32;
        let mut rounds = 0u32;
        let mut precision = None;
        let mut budget_outcome = BudgetOutcome::RuleCapped;
        while rounds < max_rounds {
            if let Some(stop) = policy
                .budget
                .stop_reason(started, (rounds + 1).saturating_mul(batch))
            {
                budget_outcome = stop;
                break;
            }
            let partial = self.round_accum(
                plan,
                rounds,
                &pool,
                &task,
                collector,
                &validate,
                &policy.retry,
                strict,
                &mut completed,
                &mut failed,
            );
            collector.merge(&mut acc, partial);
            rounds += 1;
            if rounds < min_rounds {
                continue;
            }
            precision = monitor(&acc, completed);
            if let Some(p) = &precision {
                if rule.is_met(p) {
                    budget_outcome = BudgetOutcome::PrecisionMet;
                    break;
                }
            }
        }
        finish_partial(
            plan,
            collector,
            acc,
            rounds,
            completed,
            failed,
            budget_outcome,
            precision,
        )
    }

    /// Runs every replication of `plan` through `task`, returning the
    /// outputs in replication order (the [`VecCollector`] fold).
    pub fn run<T, F>(&self, plan: &ReplicationPlan, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Replication) -> T + Sync + Send,
    {
        self.collect(plan, task, &VecCollector)
    }

    /// Runs every replication and folds the outputs with `collector`,
    /// one batch-sized round at a time.
    pub fn collect<T, F, C>(&self, plan: &ReplicationPlan, task: F, collector: &C) -> C::Output
    where
        T: Send,
        F: Fn(Replication) -> T + Sync + Send,
        C: Collector<T>,
    {
        self.run_ws(plan, || (), |(): &mut (), rep| task(rep), collector)
    }

    /// Runs every replication with a reusable per-worker **workspace**
    /// and folds the outputs with `collector`.
    ///
    /// `init` creates one workspace per worker that needs one (a serial
    /// run creates exactly one; a parallel run at most one per
    /// concurrently active worker). Each replication receives `&mut W`
    /// for the duration of its task, so simulators, scratch vectors and
    /// other heap state amortize across all the replications a worker
    /// executes — the task is responsible for resetting whatever
    /// per-replication state it reads (the campaign and SAN workspaces
    /// in this workspace do so by construction).
    ///
    /// Seeds are still the plan's pure `namespace ^ index` derivation
    /// and the fold shape is the same fixed per-round structure as
    /// [`Executor::collect`], so for any task whose output depends only
    /// on its `Replication` (not on workspace history), `run_ws` is
    /// **bit-identical** to `collect` on every executor mode.
    ///
    /// # Examples
    ///
    /// ```
    /// use diversify_des::exec::{Executor, ReplicationPlan, VecCollector};
    ///
    /// let plan = ReplicationPlan::flat(64, 7);
    /// // The workspace is a scratch buffer reused across replications.
    /// let sums: Vec<u64> = Executor::parallel().run_ws(
    ///     &plan,
    ///     Vec::new,
    ///     |scratch: &mut Vec<u64>, rep| {
    ///         scratch.clear();
    ///         scratch.extend((0..8).map(|k| rep.seed.rotate_left(k) % 97));
    ///         scratch.iter().sum()
    ///     },
    ///     &VecCollector,
    /// );
    /// let plain: Vec<u64> = Executor::serial().run(&plan, |rep| {
    ///     (0..8).map(|k| rep.seed.rotate_left(k) % 97).sum()
    /// });
    /// assert_eq!(sums, plain);
    /// ```
    pub fn run_ws<W, T, I, F, C>(
        &self,
        plan: &ReplicationPlan,
        init: I,
        task: F,
        collector: &C,
    ) -> C::Output
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
    {
        let run = self.run_fixed_ft(
            plan,
            init,
            task,
            collector,
            &RunPolicy::new(),
            accept_all::<T>,
            true,
        );
        match run.output {
            Some(output) => output,
            // Strict mode re-raises the first failure and the policy is
            // unlimited, so every replication of the plan completed.
            None => unreachable!("a strict unbudgeted run always completes"),
        }
    }

    /// Runs every replication of `plan` through a lockstep
    /// [`BatchTask`], partitioning each batch into groups of `lanes`
    /// replications that advance simultaneously, and folds the outputs
    /// with `collector`.
    ///
    /// Each batch splits into `⌈batch_size / lanes⌉` lane groups: full
    /// groups run on [`BatchTask::run_batch`]; the remainder group (and
    /// nothing else) degrades to [`BatchTask::run_scalar`], one
    /// replication at a time. Because the task contract makes every
    /// lane bit-identical to its scalar replication, the fold sees the
    /// same per-replication outputs as [`Executor::run_ws`] on the
    /// scalar task — so **serial ≡ parallel ≡ scalar** holds by
    /// construction, for any lane width. A parallel executor schedules
    /// lane groups (not single replications) across workers, each group
    /// on a pooled workspace, and folds group outputs in replication
    /// order.
    ///
    /// This is the strict path: a panicking replication propagates, as
    /// with [`Executor::run_ws`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn run_ws_lockstep<B, C>(
        &self,
        plan: &ReplicationPlan,
        task: &B,
        lanes: usize,
        collector: &C,
    ) -> C::Output
    where
        B: BatchTask,
        C: Collector<B::Output>,
    {
        assert!(lanes > 0, "lockstep execution requires at least one lane");
        let lanes = u32::try_from(lanes).unwrap_or(u32::MAX);
        let init = || task.workspace();
        let pool = WorkspacePool::new(&init);
        let mut acc = collector.empty();
        for round in 0..plan.batches() {
            let start = round * plan.batch_size();
            let end = start + plan.batch_size();
            let groups: Vec<Range<u32>> = (0..plan.batch_size().div_ceil(lanes))
                .map(|g| {
                    let lo = start + g * lanes;
                    lo..(lo + lanes).min(end)
                })
                .collect();
            let mut partial = collector.empty();
            match self.mode {
                ExecMode::Serial => pool.with(|ws| {
                    let mut reps = Vec::with_capacity(lanes as usize);
                    let mut out = Vec::with_capacity(lanes as usize);
                    for group in &groups {
                        out.clear();
                        run_lane_group(plan, task, group.clone(), lanes, ws, &mut reps, &mut out);
                        for (offset, value) in out.drain(..).enumerate() {
                            let rep = plan.replication(group.start + offset as u32);
                            collector.accumulate(plan, &mut partial, rep, value);
                        }
                    }
                }),
                ExecMode::Parallel => {
                    let outputs: Vec<Vec<B::Output>> = groups
                        .clone()
                        .into_par_iter()
                        .map(|group| {
                            pool.with(|ws| {
                                let mut reps = Vec::with_capacity(lanes as usize);
                                let mut out = Vec::with_capacity(lanes as usize);
                                run_lane_group(plan, task, group, lanes, ws, &mut reps, &mut out);
                                out
                            })
                        })
                        .collect();
                    for (group, out) in groups.iter().zip(outputs) {
                        for (offset, value) in out.into_iter().enumerate() {
                            let rep = plan.replication(group.start + offset as u32);
                            collector.accumulate(plan, &mut partial, rep, value);
                        }
                    }
                }
            }
            collector.merge(&mut acc, partial);
        }
        collector.finish(plan, acc)
    }

    /// Runs `plan` under a [`RunPolicy`], isolating panics and bounding
    /// work, and returns a gracefully degraded [`PartialRun`] instead
    /// of propagating failures.
    ///
    /// Every replication executes unwind-caught: a panic (after the
    /// policy's retries) becomes a [`ReplicationFailure`] and the fold
    /// simply skips that slot, so every surviving replication's
    /// contribution is bit-identical to the fault-free run. The
    /// policy's [`Budget`] is checked at round boundaries; a truncated
    /// run is bit-identical to the fixed plan of the rounds it
    /// completed.
    pub fn run_ws_budgeted<W, T, I, F, C>(
        &self,
        plan: &ReplicationPlan,
        init: I,
        task: F,
        collector: &C,
        policy: &RunPolicy,
    ) -> PartialRun<C::Output>
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
    {
        self.run_fixed_ft(plan, init, task, collector, policy, accept_all::<T>, false)
    }

    /// [`Executor::run_ws_budgeted`] with an output validator: a
    /// replication whose output `validate` rejects (e.g. a non-finite
    /// reward) counts as failed — retried per policy, then recorded as
    /// [`FailureCause::InvalidOutput`] — instead of silently corrupting
    /// downstream aggregates.
    pub fn run_ws_checked<W, T, I, F, C, V>(
        &self,
        plan: &ReplicationPlan,
        init: I,
        task: F,
        collector: &C,
        policy: &RunPolicy,
        validate: V,
    ) -> PartialRun<C::Output>
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
        V: Fn(&T) -> bool + Sync,
    {
        self.run_fixed_ft(plan, init, task, collector, policy, validate, false)
    }

    /// Executes batch-sized rounds of `plan` until `rule` is satisfied
    /// on the response watched by `monitor`, or the replication cap is
    /// hit.
    ///
    /// `plan` contributes the seed schedule and the round size
    /// (`batch_size`); its batch *count* is ignored — the bounds come
    /// from the rule. After each round past `rule.min_replications`, the
    /// monitor receives the running accumulator and the replication
    /// count and returns the current [`Precision`] of the chosen
    /// response (or `None` while it cannot be computed, e.g. no
    /// variance yet).
    ///
    /// Seeds stay the plan's `namespace ^ index` derivation and the fold
    /// shape is the fixed per-round structure, so a run that stops after
    /// *N* replications is **bit-identical** to
    /// `collect(&plan.with_batches(N / batch_size), …)`.
    pub fn run_adaptive<T, F, C, M>(
        &self,
        plan: &ReplicationPlan,
        rule: &StopRule,
        task: F,
        collector: &C,
        monitor: M,
    ) -> AdaptiveRun<C::Output>
    where
        T: Send,
        F: Fn(Replication) -> T + Sync + Send,
        C: Collector<T>,
        M: Fn(&C::Accum, u32) -> Option<Precision>,
    {
        self.run_adaptive_ws(
            plan,
            rule,
            || (),
            |(): &mut (), rep| task(rep),
            collector,
            monitor,
        )
    }

    /// The workspace twin of [`Executor::run_adaptive`]: adaptive
    /// batch-sized rounds whose replications borrow per-worker
    /// workspaces from one pool that stays alive **across rounds**, so
    /// an adaptive run re-pays workspace setup once, not once per
    /// round.
    ///
    /// Everything `run_adaptive` guarantees still holds: a run that
    /// stops after *N* replications is bit-identical to
    /// `run_ws(&plan.with_batches(N / batch_size), …)` — and, for
    /// history-independent tasks, to the plain `collect` of that plan.
    pub fn run_adaptive_ws<W, T, I, F, C, M>(
        &self,
        plan: &ReplicationPlan,
        rule: &StopRule,
        init: I,
        task: F,
        collector: &C,
        monitor: M,
    ) -> AdaptiveRun<C::Output>
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
        M: Fn(&C::Accum, u32) -> Option<Precision>,
    {
        let run = self.run_adaptive_ft(
            plan,
            rule,
            init,
            task,
            collector,
            monitor,
            &RunPolicy::new(),
            accept_all::<T>,
            true,
        );
        let output = match run.output {
            Some(output) => output,
            // Strict mode re-raises failures and the rule executes at
            // least one full round, so the fold is never empty.
            None => unreachable!("a strict adaptive run always completes at least one round"),
        };
        AdaptiveRun {
            output,
            plan: run.plan,
            rounds: run.rounds,
            replications: run.attempted,
            target_met: run.budget_outcome == BudgetOutcome::PrecisionMet,
            precision: run.precision,
        }
    }

    /// The budgeted twin of [`Executor::run_adaptive_ws`]: adaptive
    /// rounds under a [`RunPolicy`], returning a [`PartialRun`] whose
    /// `budget_outcome` distinguishes precision met, the rule's own
    /// replication cap, and external truncation (budget, deadline,
    /// cancellation). The monitor receives the *completed* replication
    /// count, which under faults may be below `rounds × batch_size`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_adaptive_ws_budgeted<W, T, I, F, C, M>(
        &self,
        plan: &ReplicationPlan,
        rule: &StopRule,
        init: I,
        task: F,
        collector: &C,
        monitor: M,
        policy: &RunPolicy,
    ) -> PartialRun<C::Output>
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
        M: Fn(&C::Accum, u32) -> Option<Precision>,
    {
        self.run_adaptive_ft(
            plan,
            rule,
            init,
            task,
            collector,
            monitor,
            policy,
            accept_all::<T>,
            false,
        )
    }

    /// [`Executor::run_adaptive_ws_budgeted`] with an output validator
    /// (see [`Executor::run_ws_checked`]).
    #[allow(clippy::too_many_arguments)]
    pub fn run_adaptive_ws_checked<W, T, I, F, C, M, V>(
        &self,
        plan: &ReplicationPlan,
        rule: &StopRule,
        init: I,
        task: F,
        collector: &C,
        monitor: M,
        policy: &RunPolicy,
        validate: V,
    ) -> PartialRun<C::Output>
    where
        W: Send,
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, Replication) -> T + Sync + Send,
        C: Collector<T>,
        M: Fn(&C::Accum, u32) -> Option<Precision>,
        V: Fn(&T) -> bool + Sync,
    {
        self.run_adaptive_ft(
            plan, rule, init, task, collector, monitor, policy, validate, false,
        )
    }
}

/// Executes one lane group of a lockstep run: a full group (exactly
/// `lanes` replications) goes through [`BatchTask::run_batch`]; a
/// remainder group degrades to the scalar path, one replication at a
/// time. Outputs land in `out` in replication order either way.
fn run_lane_group<B: BatchTask>(
    plan: &ReplicationPlan,
    task: &B,
    group: Range<u32>,
    lanes: u32,
    ws: &mut B::Workspace,
    reps: &mut Vec<Replication>,
    out: &mut Vec<B::Output>,
) {
    if group.len() == lanes as usize {
        reps.clear();
        reps.extend(group.map(|i| plan.replication(i)));
        task.run_batch(ws, reps, out);
    } else {
        for i in group {
            let value = task.run_scalar(ws, plan.replication(i));
            out.push(value);
        }
    }
}

/// A pool of reusable per-worker workspaces behind the
/// [`Executor::run_ws`] family.
///
/// Workspaces are checked out for the duration of one replication and
/// returned afterwards, so the pool holds at most one workspace per
/// concurrently active worker, created lazily by `init`. The free list
/// lives behind a mutex, but check-out/check-in is two uncontended
/// lock round-trips per replication — noise next to any simulation
/// task — and in the steady state the pool performs no allocation.
struct WorkspacePool<'i, W, I> {
    init: &'i I,
    free: Mutex<Vec<W>>,
}

impl<'i, W, I: Fn() -> W> WorkspacePool<'i, W, I> {
    fn new(init: &'i I) -> Self {
        WorkspacePool {
            init,
            free: Mutex::new(Vec::new()),
        }
    }

    /// Runs `f` with a workspace checked out of the pool (creating one
    /// when every existing workspace is busy), then returns it. If `f`
    /// panics the workspace is dropped, never recycled half-mutated.
    ///
    /// Zero-sized workspaces (the unit workspace the plain
    /// `run`/`collect`/`run_adaptive` paths delegate with) skip the pool
    /// entirely — there is nothing to reuse, so legacy callers pay no
    /// lock traffic. The branch is a compile-time constant per
    /// monomorphization.
    fn with<R>(&self, f: impl FnOnce(&mut W) -> R) -> R {
        if std::mem::size_of::<W>() == 0 {
            let mut ws = (self.init)();
            return f(&mut ws);
        }
        // A poisoned free list only means some thread panicked while
        // *pushing or popping* (the lock is never held across a task);
        // the workspaces inside are intact, so keep serving them.
        let checked_out = self
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        let mut ws = checked_out.unwrap_or_else(|| (self.init)());
        let out = f(&mut ws);
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(ws);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStream;

    #[test]
    fn seeds_are_pure_functions_of_plan() {
        let plan = ReplicationPlan::new(4, 25, 99);
        let again = ReplicationPlan::new(4, 25, 99);
        for i in 0..plan.total() {
            assert_eq!(plan.seed_for(i), again.seed_for(i));
        }
        // Seeds do not depend on the batch split, only on the index.
        let other_split = ReplicationPlan::new(25, 4, 99);
        for i in 0..plan.total() {
            assert_eq!(plan.seed_for(i), other_split.seed_for(i));
        }
    }

    #[test]
    fn namespace_matches_legacy_replication_runner_schedule() {
        // ReplicationRunner historically derived seed i as
        // derive_seed(master, StreamId(0x5EED_0000_0000_0000 ^ i)); the
        // default plan must reproduce that exactly.
        let plan = ReplicationPlan::flat(100, 1234);
        for i in 0..100 {
            assert_eq!(
                plan.seed_for(i),
                derive_seed(1234, StreamId(DEFAULT_STREAM_NAMESPACE ^ u64::from(i)))
            );
        }
    }

    #[test]
    fn additive_namespaces_are_xor_compatible_for_small_indices() {
        // Migrated call sites relied on `base + i` stream ids with base
        // having zero low bits; XOR preserves those schedules for any
        // index below 2^16.
        for base in [0x4E_0000u64, 0xCA_0000] {
            for i in [0u32, 1, 2, 255, 65_535] {
                assert_eq!(base ^ u64::from(i), base + u64::from(i));
            }
        }
    }

    #[test]
    fn serial_equals_parallel() {
        let plan = ReplicationPlan::new(3, 33, 7);
        let task = |rep: Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(1));
            (0..100).map(|_| rng.uniform()).sum::<f64>()
        };
        let serial = Executor::serial().run(&plan, task);
        let parallel = Executor::parallel().run(&plan, task);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batch_ranges_tile_the_plan() {
        let plan = ReplicationPlan::new(4, 5, 0);
        let ranges: Vec<_> = plan.batch_ranges().collect();
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..5);
        assert_eq!(ranges[3], 15..20);
        assert_eq!(plan.batch_of(0), 0);
        assert_eq!(plan.batch_of(4), 0);
        assert_eq!(plan.batch_of(5), 1);
        assert_eq!(plan.batch_of(19), 3);
    }

    #[test]
    fn derived_plans_decorrelate() {
        let base = ReplicationPlan::new(2, 10, 42);
        let a = base.derived(StreamId(0));
        let b = base.derived(StreamId(1));
        assert_ne!(a.master_seed(), b.master_seed());
        assert_eq!(a.batches(), base.batches());
        // Deriving is deterministic.
        assert_eq!(a, base.derived(StreamId(0)));
    }

    #[test]
    fn with_batches_keeps_schedule() {
        let base = ReplicationPlan::new(4, 25, 7).with_namespace(0xAB_0000);
        let grown = base.with_batches(9);
        assert_eq!(grown.batches(), 9);
        assert_eq!(grown.batch_size(), 25);
        assert_eq!(grown.namespace(), base.namespace());
        for i in 0..base.total() {
            assert_eq!(base.seed_for(i), grown.seed_for(i));
        }
    }

    #[test]
    fn shard_plans_keep_the_global_seed_schedule() {
        let base = ReplicationPlan::new(6, 10, 77).with_namespace(0x4E_0000);
        // Tile the run into three 2-batch shards.
        for first in [0u32, 2, 4] {
            let shard = base.with_batches(2).with_first_batch(first);
            assert_eq!(shard.first_batch(), first);
            assert_eq!(shard.first_replication(), first * 10);
            for i in 0..shard.total() {
                assert_eq!(shard.seed_for(i), base.seed_for(first * 10 + i));
                assert_eq!(shard.stream_id(i), base.stream_id(first * 10 + i));
            }
        }
        // Rebatching and deriving preserve the shard offset.
        let shard = base.with_first_batch(4);
        assert_eq!(shard.with_batches(1).first_batch(), 4);
        assert_eq!(shard.derived(StreamId(3)).first_batch(), 4);
    }

    #[test]
    fn sharded_runs_concatenate_to_the_whole_run() {
        let base = ReplicationPlan::new(4, 8, 2024);
        // Output depends on the seed alone — `rep.index` is shard-local.
        let task = |rep: Replication| rep.seed.rotate_left((rep.seed % 13) as u32);
        let whole = Executor::serial().run(&base, task);
        let mut tiled = Vec::new();
        for first in [0u32, 1, 2, 3] {
            let shard = base.with_batches(1).with_first_batch(first);
            tiled.extend(Executor::parallel().run(&shard, task));
        }
        assert_eq!(whole, tiled);
    }

    #[test]
    fn shard_offset_overflow_is_rejected() {
        let plan = ReplicationPlan::new(2, 1 << 16, 0);
        assert_eq!(
            plan.try_with_first_batch(u16::MAX as u32),
            Err(PlanError::ReplicationOverflow)
        );
        assert!(plan.try_with_first_batch(1000).is_ok());
    }

    #[test]
    fn mean_collector_averages() {
        let plan = ReplicationPlan::flat(4, 0);
        let mean =
            Executor::serial().collect(&plan, |rep| f64::from(rep.index) + 1.0, &MeanCollector);
        assert!((mean - 2.5).abs() < 1e-12);
    }

    #[test]
    fn vec_collector_round_trips_run() {
        let plan = ReplicationPlan::new(3, 4, 5);
        let direct = Executor::serial().run(&plan, |rep| rep.seed);
        let folded = Executor::serial().collect(&plan, |rep| rep.seed, &VecCollector);
        assert_eq!(direct, folded);
        assert_eq!(direct.len(), 12);
    }

    #[test]
    fn adaptive_truncation_is_bit_identical_to_fixed_plan() {
        // A rule that is never met runs exactly to the cap; the result
        // must equal the fixed plan of the same size, bit for bit.
        let base = ReplicationPlan::new(1, 10, 99);
        let rule = StopRule::relative(1e-9, 10, 40);
        let task = |rep: Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(2));
            rng.uniform()
        };
        for exec in [Executor::serial(), Executor::parallel()] {
            let adaptive = exec.run_adaptive(&base, &rule, task, &MeanCollector, |_, _| None);
            assert_eq!(adaptive.rounds, 4);
            assert_eq!(adaptive.replications, 40);
            assert!(!adaptive.target_met);
            let fixed = exec.collect(&base.with_batches(4), task, &MeanCollector);
            assert_eq!(adaptive.output.to_bits(), fixed.to_bits());
        }
    }

    #[test]
    fn run_ws_is_bit_identical_to_run() {
        let plan = ReplicationPlan::new(3, 17, 13);
        let task = |rep: Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(4));
            (0..50).map(|_| rng.uniform()).sum::<f64>()
        };
        let reference = Executor::serial().run(&plan, task);
        for exec in [Executor::serial(), Executor::parallel()] {
            let ws: Vec<f64> = exec.run_ws(
                &plan,
                || Vec::with_capacity(50),
                |scratch: &mut Vec<f64>, rep| {
                    scratch.clear();
                    let mut rng = RngStream::new(rep.seed, StreamId(4));
                    scratch.extend((0..50).map(|_| rng.uniform()));
                    scratch.iter().sum()
                },
                &VecCollector,
            );
            assert_eq!(
                ws.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn serial_run_ws_reuses_one_workspace() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let created = AtomicU32::new(0);
        let plan = ReplicationPlan::new(4, 8, 0);
        let _ = Executor::serial().run_ws(
            &plan,
            || created.fetch_add(1, Ordering::Relaxed),
            |_, rep| rep.index,
            &VecCollector,
        );
        assert_eq!(created.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn adaptive_ws_keeps_workspaces_across_rounds() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let created = AtomicU32::new(0);
        let base = ReplicationPlan::new(1, 5, 2);
        let rule = StopRule::relative(1e-9, 5, 40);
        let run = Executor::serial().run_adaptive_ws(
            &base,
            &rule,
            || created.fetch_add(1, Ordering::Relaxed),
            |_, rep| f64::from(rep.index),
            &MeanCollector,
            |_, _| None,
        );
        assert_eq!(run.rounds, 8);
        // Eight rounds, one workspace: the pool outlives each round.
        assert_eq!(created.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn adaptive_ws_truncation_matches_plain_adaptive() {
        let base = ReplicationPlan::new(1, 10, 99);
        let rule = StopRule::relative(1e-9, 10, 40);
        let task = |rep: Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(2));
            rng.uniform()
        };
        for exec in [Executor::serial(), Executor::parallel()] {
            let plain = exec.run_adaptive(&base, &rule, task, &MeanCollector, |_, _| None);
            let ws = exec.run_adaptive_ws(
                &base,
                &rule,
                || 0u64,
                |count: &mut u64, rep| {
                    *count += 1;
                    task(rep)
                },
                &MeanCollector,
                |_, _| None,
            );
            assert_eq!(ws.rounds, plain.rounds);
            assert_eq!(ws.output.to_bits(), plain.output.to_bits());
        }
    }

    #[test]
    fn adaptive_stops_when_rule_met() {
        // Constant outputs: the monitor reports a zero-width interval,
        // so the run stops at the first check past min_replications.
        let base = ReplicationPlan::new(1, 5, 3);
        let rule = StopRule::relative(0.05, 12, 100);
        let run = Executor::serial().run_adaptive(
            &base,
            &rule,
            |_| 1.0f64,
            &MeanCollector,
            |acc, n| {
                assert_eq!(u64::from(n), acc.n);
                Some(Precision {
                    estimate: acc.sum / acc.n as f64,
                    half_width: 0.0,
                })
            },
        );
        // min 12 → 3 rounds of 5 before the first check.
        assert_eq!(run.rounds, 3);
        assert_eq!(run.replications, 15);
        assert!(run.target_met);
        assert_eq!(run.precision.unwrap().half_width, 0.0);
        assert_eq!(run.plan.batches(), 3);
        assert!((run.output - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adaptive_respects_replication_cap() {
        let base = ReplicationPlan::new(1, 8, 3);
        // Cap below one round still executes exactly one round.
        let tiny = StopRule::relative(0.5, 1, 4);
        let run =
            Executor::serial().run_adaptive(&base, &tiny, |_| 1.0f64, &MeanCollector, |_, _| None);
        assert_eq!(run.rounds, 1);
        assert_eq!(run.replications, 8);
        // Cap of 3 rounds is never exceeded.
        let capped = StopRule::relative(1e-12, 1, 24);
        let run = Executor::serial().run_adaptive(
            &base,
            &capped,
            |_| 1.0f64,
            &MeanCollector,
            |_, _| {
                Some(Precision {
                    estimate: 0.0,
                    half_width: 1.0,
                })
            },
        );
        assert_eq!(run.rounds, 3);
        assert!(!run.target_met);
    }

    #[test]
    fn precision_relative_half_width() {
        let p = Precision {
            estimate: 2.0,
            half_width: 0.1,
        };
        assert!((p.relative_half_width() - 0.05).abs() < 1e-12);
        let zero = Precision {
            estimate: 0.0,
            half_width: 0.1,
        };
        assert_eq!(zero.relative_half_width(), f64::INFINITY);
        let tight = Precision {
            estimate: 0.0,
            half_width: 0.0,
        };
        assert_eq!(tight.relative_half_width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty batch plan")]
    fn zero_batches_rejected() {
        let _ = ReplicationPlan::new(0, 5, 1);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_plan_rejected() {
        let _ = ReplicationPlan::new(u32::MAX, 2, 1);
    }

    #[test]
    #[should_panic(expected = "0 < min <= max")]
    fn stop_rule_rejects_inverted_bounds() {
        let _ = StopRule::relative(0.05, 10, 5);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn stop_rule_rejects_zero_target() {
        let _ = StopRule::relative(0.0, 1, 10);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert_eq!(ReplicationPlan::try_new(0, 5, 1), Err(PlanError::EmptyPlan));
        assert_eq!(ReplicationPlan::try_new(5, 0, 1), Err(PlanError::EmptyPlan));
        assert_eq!(
            ReplicationPlan::try_new(u32::MAX, 2, 1),
            Err(PlanError::ReplicationOverflow)
        );
        assert_eq!(ReplicationPlan::try_flat(0, 1), Err(PlanError::EmptyPlan));
        assert!(ReplicationPlan::try_new(4, 25, 9).is_ok());
        assert_eq!(
            StopRule::try_relative(f64::NAN, 1, 10).unwrap_err(),
            PlanError::NonPositiveTarget
        );
        assert_eq!(
            StopRule::try_relative(-0.1, 1, 10).unwrap_err(),
            PlanError::NonPositiveTarget
        );
        assert_eq!(
            StopRule::try_relative(0.05, 10, 5).unwrap_err(),
            PlanError::InvalidBounds
        );
        assert_eq!(
            StopRule::try_relative(0.05, 0, 0).unwrap_err(),
            PlanError::InvalidBounds
        );
        assert!(StopRule::try_relative(0.05, 1, 10).is_ok());
    }

    #[test]
    fn budgeted_run_isolates_panics_and_keeps_survivors() {
        crate::faults::silence_injected_panics();
        let plan = ReplicationPlan::new(4, 8, 11);
        let clean: Vec<u64> = Executor::serial().run(&plan, |rep| rep.seed % 1000);
        for exec in [Executor::serial(), Executor::parallel()] {
            let run = exec.run_ws_budgeted(
                &plan,
                || (),
                |(): &mut (), rep| {
                    if rep.index % 7 == 3 {
                        std::panic::panic_any(crate::faults::InjectedPanic { index: rep.index });
                    }
                    rep.seed % 1000
                },
                &VecCollector,
                &RunPolicy::new(),
            );
            assert_eq!(run.budget_outcome, BudgetOutcome::Completed);
            assert!(run.is_degraded());
            assert_eq!(run.attempted, 32);
            let expected_failures: Vec<u32> = (0..32).filter(|i| i % 7 == 3).collect();
            assert_eq!(
                run.failed.iter().map(|f| f.index).collect::<Vec<_>>(),
                expected_failures
            );
            for failure in &run.failed {
                assert_eq!(failure.seed, plan.seed_for(failure.index));
                assert_eq!(failure.attempts, 1);
                assert!(matches!(failure.cause, FailureCause::Panicked(_)));
            }
            assert_eq!(run.completed, 32 - run.failed.len() as u32);
            let survivors: Vec<u64> = clean
                .iter()
                .enumerate()
                .filter(|(i, _)| *i % 7 != 3)
                .map(|(_, v)| *v)
                .collect();
            assert_eq!(run.output, Some(survivors));
        }
    }

    #[test]
    fn validator_rejection_is_recorded_as_invalid_output() {
        let plan = ReplicationPlan::flat(10, 3);
        let run = Executor::serial().run_ws_checked(
            &plan,
            || (),
            |(): &mut (), rep| if rep.index == 4 { f64::NAN } else { 1.0 },
            &MeanCollector,
            &RunPolicy::new(),
            |value: &f64| value.is_finite(),
        );
        assert_eq!(run.completed, 9);
        assert_eq!(run.failed.len(), 1);
        assert_eq!(run.failed[0].index, 4);
        assert_eq!(run.failed[0].cause, FailureCause::InvalidOutput);
        assert_eq!(run.output, Some(1.0));
    }

    #[test]
    fn same_seed_retry_erases_transient_faults() {
        crate::faults::silence_injected_panics();
        let plan = ReplicationPlan::new(2, 10, 77);
        let task = |rep: Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(5));
            rng.uniform()
        };
        let clean: Vec<f64> = Executor::serial().run(&plan, task);
        let faults = crate::faults::FaultPlan::none(plan.total())
            .with_fault(2, crate::faults::FaultKind::Panic)
            .with_fault(13, crate::faults::FaultKind::Panic)
            .transient(1);
        for exec in [Executor::serial(), Executor::parallel()] {
            faults.reset();
            let policy = RunPolicy::new().with_retry(RetryPolicy::retries(2));
            let run = exec.run_ws_budgeted(
                &plan,
                || (),
                faults.wrap(|(): &mut (), rep| task(rep), |v| v),
                &VecCollector,
                &policy,
            );
            assert!(
                run.failed.is_empty(),
                "transient faults must be retried away"
            );
            assert_eq!(run.completed, plan.total());
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(run.output.as_ref().unwrap()),
                bits(&clean),
                "same-seed retry must reproduce the original draw schedule"
            );
            assert!(!run.is_degraded());
        }
    }

    #[test]
    fn attempt_salt_reseeds_only_retries() {
        let retry = RetryPolicy::retries(3).with_reseed_salt(0xBEEF);
        assert_eq!(
            retry.seed_for_attempt(42, 0),
            42,
            "first attempt keeps the plan seed"
        );
        let second = retry.seed_for_attempt(42, 1);
        assert_ne!(second, 42);
        assert_eq!(second, derive_seed(42, StreamId(0xBEEF ^ 1)));
        assert_ne!(retry.seed_for_attempt(42, 2), second);
        // SameSeed never drifts.
        let same = RetryPolicy::retries(3);
        assert_eq!(same.seed_for_attempt(42, 2), 42);
    }

    #[test]
    fn replication_budget_truncates_to_whole_rounds_bit_identically() {
        let plan = ReplicationPlan::new(6, 5, 123);
        let task = |rep: Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(9));
            rng.uniform()
        };
        for exec in [Executor::serial(), Executor::parallel()] {
            // A 17-replication budget affords exactly 3 rounds of 5.
            let policy =
                RunPolicy::new().with_budget(Budget::unlimited().with_max_replications(17));
            let run = exec.run_ws_budgeted(
                &plan,
                || (),
                |(): &mut (), rep| task(rep),
                &VecCollector,
                &policy,
            );
            assert_eq!(run.budget_outcome, BudgetOutcome::ReplicationBudget);
            assert_eq!(run.rounds, 3);
            assert_eq!(run.completed, 15);
            assert_eq!(run.plan.batches(), 3);
            assert!(run.is_degraded());
            let fixed: Vec<f64> = exec.run(&plan.with_batches(3), task);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(run.output.as_ref().unwrap()), bits(&fixed));
        }
    }

    #[test]
    fn budget_below_one_round_yields_empty_partial() {
        let plan = ReplicationPlan::new(4, 10, 0);
        let policy = RunPolicy::new().with_budget(Budget::unlimited().with_max_replications(9));
        let run = Executor::serial().run_ws_budgeted(
            &plan,
            || (),
            |(): &mut (), rep| rep.index,
            &VecCollector,
            &policy,
        );
        assert_eq!(run.rounds, 0);
        assert_eq!(run.completed, 0);
        assert!(run.output.is_none());
        assert_eq!(run.budget_outcome, BudgetOutcome::ReplicationBudget);
    }

    #[test]
    fn cancellation_stops_at_the_next_round_boundary() {
        let plan = ReplicationPlan::new(10, 4, 5);
        let token = CancelToken::new();
        // Pre-cancelled: no round starts.
        token.cancel();
        let policy = RunPolicy::new().with_budget(Budget::unlimited().with_cancel(&token));
        let run = Executor::serial().run_ws_budgeted(
            &plan,
            || (),
            |(): &mut (), rep| rep.index,
            &VecCollector,
            &policy,
        );
        assert_eq!(run.rounds, 0);
        assert_eq!(run.budget_outcome, BudgetOutcome::Cancelled);
        // Cancelled from inside the second round: that round finishes,
        // then the run stops — 2 whole rounds, bit-identical.
        let token = CancelToken::new();
        let cancel_from_task = token.clone();
        let policy = RunPolicy::new().with_budget(Budget::unlimited().with_cancel(&token));
        let run = Executor::serial().run_ws_budgeted(
            &plan,
            || (),
            move |(): &mut (), rep| {
                if rep.index == 5 {
                    cancel_from_task.cancel();
                }
                rep.index
            },
            &VecCollector,
            &policy,
        );
        assert_eq!(run.budget_outcome, BudgetOutcome::Cancelled);
        assert_eq!(run.rounds, 2);
        assert_eq!(run.output, Some((0..8).collect::<Vec<_>>()));
    }

    #[test]
    fn deadline_expiry_returns_partial_results() {
        let plan = ReplicationPlan::new(50, 2, 7);
        let policy = RunPolicy::new()
            .with_budget(Budget::unlimited().with_deadline(Duration::from_micros(200)));
        let run = Executor::serial().run_ws_budgeted(
            &plan,
            || (),
            |(): &mut (), rep| {
                std::thread::sleep(Duration::from_micros(150));
                rep.index
            },
            &VecCollector,
            &policy,
        );
        assert_eq!(run.budget_outcome, BudgetOutcome::DeadlineExpired);
        assert!(run.rounds < 50, "deadline must truncate the run");
        // Whatever completed is the exact prefix.
        let n = run.completed;
        assert_eq!(run.output, Some((0..n).collect::<Vec<_>>()));
    }

    #[test]
    fn adaptive_budgeted_truncation_matches_fixed_plan() {
        let base = ReplicationPlan::new(1, 10, 99);
        let rule = StopRule::relative(1e-9, 10, 100);
        let task = |rep: Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(2));
            rng.uniform()
        };
        for exec in [Executor::serial(), Executor::parallel()] {
            let policy =
                RunPolicy::new().with_budget(Budget::unlimited().with_max_replications(30));
            let run = exec.run_adaptive_ws_budgeted(
                &base,
                &rule,
                || (),
                |(): &mut (), rep| task(rep),
                &MeanCollector,
                |_, _| None,
                &policy,
            );
            assert_eq!(run.budget_outcome, BudgetOutcome::ReplicationBudget);
            assert_eq!(run.rounds, 3);
            let fixed = exec.collect(&base.with_batches(3), task, &MeanCollector);
            assert_eq!(run.output.unwrap().to_bits(), fixed.to_bits());
        }
    }

    #[test]
    fn adaptive_budgeted_outcomes_distinguish_rule_cap_and_target() {
        let base = ReplicationPlan::new(1, 5, 3);
        let task = |_: Replication| 1.0f64;
        // Precision met.
        let met = Executor::serial().run_adaptive_ws_budgeted(
            &base,
            &StopRule::relative(0.05, 5, 100),
            || (),
            |(): &mut (), rep| task(rep),
            &MeanCollector,
            |acc, _| {
                Some(Precision {
                    estimate: acc.sum / acc.n as f64,
                    half_width: 0.0,
                })
            },
            &RunPolicy::new(),
        );
        assert_eq!(met.budget_outcome, BudgetOutcome::PrecisionMet);
        assert!(!met.is_degraded());
        // Rule cap without meeting the target: honest, not degraded.
        let capped = Executor::serial().run_adaptive_ws_budgeted(
            &base,
            &StopRule::relative(1e-12, 5, 20),
            || (),
            |(): &mut (), rep| task(rep),
            &MeanCollector,
            |_, _| None,
            &RunPolicy::new(),
        );
        assert_eq!(capped.budget_outcome, BudgetOutcome::RuleCapped);
        assert_eq!(capped.rounds, 4);
        assert!(!capped.is_degraded());
    }

    #[test]
    fn total_failure_yields_no_output_but_full_failure_record() {
        crate::faults::silence_injected_panics();
        let plan = ReplicationPlan::flat(6, 1);
        let run = Executor::serial().run_ws_budgeted(
            &plan,
            || (),
            |(): &mut (), rep| -> u32 {
                std::panic::panic_any(crate::faults::InjectedPanic { index: rep.index })
            },
            &VecCollector,
            &RunPolicy::new(),
        );
        assert!(run.output.is_none());
        assert_eq!(run.completed, 0);
        assert_eq!(run.failed.len(), 6);
        assert_eq!(run.budget_outcome, BudgetOutcome::Completed);
    }

    #[test]
    #[should_panic(expected = "strict panic passes through")]
    fn strict_run_ws_still_propagates_panics() {
        let plan = ReplicationPlan::flat(4, 1);
        let _: Vec<u32> = Executor::serial().run_ws(
            &plan,
            || (),
            |(): &mut (), rep| {
                if rep.index == 2 {
                    panic!("strict panic passes through");
                }
                rep.index
            },
            &VecCollector,
        );
    }

    /// A lockstep task whose per-replication output is a short RNG walk
    /// from the replication seed. `run_batch` advances all lanes one
    /// draw at a time (genuinely interleaved), so per-lane bit-identity
    /// with the scalar path is exercised, not just delegated.
    struct WalkBatch;

    impl WalkBatch {
        const STEPS: usize = 16;
    }

    impl BatchTask for WalkBatch {
        type Workspace = Vec<u64>;
        type Output = u64;

        fn workspace(&self) -> Vec<u64> {
            Vec::new()
        }

        fn run_scalar(&self, _ws: &mut Vec<u64>, rep: Replication) -> u64 {
            let mut rng = RngStream::new(rep.seed, StreamId(0x10C5));
            (0..Self::STEPS).fold(0u64, |acc, i| {
                acc ^ rng.uniform().to_bits().rotate_left(7) ^ rng.index(11 + i) as u64
            })
        }

        fn run_batch(&self, ws: &mut Vec<u64>, reps: &[Replication], out: &mut Vec<u64>) {
            let mut lanes = crate::rng::RngLanes::new();
            ws.clear();
            ws.extend(reps.iter().map(|r| r.seed));
            lanes.reseed(ws, StreamId(0x10C5));
            let mut accs = vec![0u64; reps.len()];
            for i in 0..Self::STEPS {
                for (lane, acc) in accs.iter_mut().enumerate() {
                    *acc ^= lanes.uniform(lane).to_bits().rotate_left(7)
                        ^ lanes.index(lane, 11 + i) as u64;
                }
            }
            out.extend_from_slice(&accs);
        }
    }

    #[test]
    fn lockstep_matches_scalar_across_modes_and_widths() {
        let plan = ReplicationPlan::new(3, 17, 0xBA7C).with_namespace(0xAB_0000);
        let scalar: Vec<u64> = Executor::serial().run_ws(
            &plan,
            Vec::new,
            |ws: &mut Vec<u64>, rep| WalkBatch.run_scalar(ws, rep),
            &VecCollector,
        );
        // Widths below, at, and above the batch size, including ones
        // leaving remainder groups of every size.
        for lanes in [1usize, 2, 3, 5, 8, 16, 17, 32] {
            let serial =
                Executor::serial().run_ws_lockstep(&plan, &WalkBatch, lanes, &VecCollector);
            let parallel =
                Executor::parallel().run_ws_lockstep(&plan, &WalkBatch, lanes, &VecCollector);
            assert_eq!(serial, scalar, "serial lockstep, {lanes} lanes");
            assert_eq!(parallel, scalar, "parallel lockstep, {lanes} lanes");
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn lockstep_rejects_zero_lanes() {
        let plan = ReplicationPlan::flat(4, 1);
        let _ = Executor::serial().run_ws_lockstep(&plan, &WalkBatch, 0, &VecCollector);
    }

    #[test]
    fn budget_stop_reason_orders_cancel_deadline_cap() {
        let token = CancelToken::new();
        let budget = Budget::unlimited()
            .with_max_replications(10)
            .with_deadline(Duration::from_secs(3600))
            .with_cancel(&token);
        let started = Instant::now();
        assert_eq!(budget.stop_reason(started, 10), None);
        assert_eq!(
            budget.stop_reason(started, 11),
            Some(BudgetOutcome::ReplicationBudget)
        );
        token.cancel();
        assert_eq!(
            budget.stop_reason(started, 5),
            Some(BudgetOutcome::Cancelled)
        );
        assert!(Budget::unlimited().is_unlimited());
        assert!(!budget.is_unlimited());
    }
}
