//! Deterministic, stream-split random-number generation.
//!
//! Experiments in the *Diversify!* reproduction compare system
//! configurations under *common random numbers*: every logical component
//! draws from its own [`RngStream`] derived from `(master_seed, stream_id)`
//! so that changing one component's behaviour does not perturb the random
//! sequence seen by the others.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Identifies a logical random stream within a simulation (e.g. "activity 3
/// firing delays" or "node 7 exploit outcomes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

/// SplitMix64 step — the standard seed-expansion finalizer. Used to derive
/// well-decorrelated child seeds from `(master, stream)` pairs.
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a master seed and a stream identifier.
///
/// The derivation is two rounds of SplitMix64 over the XOR-combined inputs,
/// which empirically decorrelates adjacent streams.
///
/// # Examples
///
/// ```
/// use diversify_des::{derive_seed, StreamId};
/// let a = derive_seed(42, StreamId(0));
/// let b = derive_seed(42, StreamId(1));
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, StreamId(0)));
/// ```
#[must_use]
pub fn derive_seed(master: u64, stream: StreamId) -> u64 {
    splitmix64(splitmix64(master) ^ splitmix64(stream.0.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// A named, independently seeded random stream.
///
/// Wraps [`SmallRng`] (xoshiro-family, fast and reproducible across runs of
/// the same binary) and records its provenance for debugging.
#[derive(Debug)]
pub struct RngStream {
    id: StreamId,
    rng: SmallRng,
}

impl RngStream {
    /// Creates the stream identified by `id` under `master` seed.
    #[must_use]
    pub fn new(master: u64, id: StreamId) -> Self {
        RngStream {
            id,
            rng: SmallRng::seed_from_u64(derive_seed(master, id)),
        }
    }

    /// The stream identifier this stream was created with.
    #[must_use]
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Draws a uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53-bit mantissa construction for an unbiased double in [0,1).
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Draws an exponential variate with the given `rate` (λ).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Draws a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range requires lo <= hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Draws an integer uniformly from `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires non-empty range");
        // Rejection sampling for an unbiased draw.
        let n64 = n as u64;
        let zone = u64::MAX - (u64::MAX % n64);
        loop {
            let v = self.rng.next_u64();
            if v < zone {
                return (v % n64) as usize;
            }
        }
    }

    /// Selects an index from a discrete distribution given by `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums to
    /// zero.
    pub fn discrete(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "discrete requires at least one weight");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0, "discrete weights must be non-negative");
                w
            })
            .sum();
        assert!(total > 0.0, "discrete weights must not all be zero");
        let mut u = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }

    /// Draws a standard normal variate (Box–Muller, polar form).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let x = self.uniform_range(-1.0, 1.0);
            let y = self.uniform_range(-1.0, 1.0);
            let s = x * x + y * y;
            if s > 0.0 && s < 1.0 {
                return x * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Draws a normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is negative.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        mean + sd * self.standard_normal()
    }

    /// Draws a Weibull variate with `shape` k and `scale` λ, a common model
    /// for time-to-compromise distributions.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    pub fn weibull(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(
            shape > 0.0 && scale > 0.0,
            "weibull parameters must be positive"
        );
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        scale * (-u.ln()).powf(1.0 / shape)
    }

    /// Draws a log-normal variate parameterized by the mean and standard
    /// deviation of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (partial Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

impl RngCore for RngStream {
    fn next_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.rng.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.rng.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = RngStream::new(7, StreamId(3));
        let mut b = RngStream::new(7, StreamId(3));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = RngStream::new(7, StreamId(0));
        let mut b = RngStream::new(7, StreamId(1));
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = RngStream::new(1, StreamId(0));
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = RngStream::new(2, StreamId(0));
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = RngStream::new(3, StreamId(0));
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(-0.5));
        assert!(r.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = RngStream::new(4, StreamId(0));
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = RngStream::new(5, StreamId(0));
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        RngStream::new(0, StreamId(0)).exponential(0.0);
    }

    #[test]
    fn index_unbiased_small() {
        let mut r = RngStream::new(6, StreamId(0));
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.index(5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn discrete_respects_weights() {
        let mut r = RngStream::new(8, StreamId(0));
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[r.discrete(&[1.0, 2.0, 3.0])] += 1;
        }
        assert!((counts[0] as f64 / 60_000.0 - 1.0 / 6.0).abs() < 0.01);
        assert!((counts[2] as f64 / 60_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn normal_moments() {
        let mut r = RngStream::new(9, StreamId(0));
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let mut r = RngStream::new(10, StreamId(0));
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.weibull(1.0, 2.0)).sum::<f64>() / n as f64;
        // Weibull(k=1, λ=2) has mean λ = 2.
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = RngStream::new(11, StreamId(0));
        let s = r.sample_indices(20, 10);
        assert_eq!(s.len(), 10);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(s.iter().all(|&i| i < 20));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::new(12, StreamId(0));
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn derive_seed_spreads_bits() {
        // Adjacent streams should differ in roughly half their bits.
        let a = derive_seed(0, StreamId(0));
        let b = derive_seed(0, StreamId(1));
        let diff = (a ^ b).count_ones();
        assert!(diff > 10, "only {diff} differing bits");
    }
}
