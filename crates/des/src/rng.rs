//! Deterministic, stream-split random-number generation.
//!
//! Experiments in the *Diversify!* reproduction compare system
//! configurations under *common random numbers*: every logical component
//! draws from its own [`RngStream`] derived from `(master_seed, stream_id)`
//! so that changing one component's behaviour does not perturb the random
//! sequence seen by the others.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Identifies a logical random stream within a simulation (e.g. "activity 3
/// firing delays" or "node 7 exploit outcomes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

/// SplitMix64 step — the standard seed-expansion finalizer. Used to derive
/// well-decorrelated child seeds from `(master, stream)` pairs.
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a master seed and a stream identifier.
///
/// The derivation is two rounds of SplitMix64 over the XOR-combined inputs,
/// which empirically decorrelates adjacent streams.
///
/// # Examples
///
/// ```
/// use diversify_des::{derive_seed, StreamId};
/// let a = derive_seed(42, StreamId(0));
/// let b = derive_seed(42, StreamId(1));
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, StreamId(0)));
/// ```
#[must_use]
pub fn derive_seed(master: u64, stream: StreamId) -> u64 {
    splitmix64(splitmix64(master) ^ splitmix64(stream.0.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// A named, independently seeded random stream.
///
/// Wraps [`SmallRng`] (xoshiro-family, fast and reproducible across runs of
/// the same binary) and records its provenance for debugging.
#[derive(Debug)]
pub struct RngStream {
    id: StreamId,
    rng: SmallRng,
}

impl RngStream {
    /// Creates the stream identified by `id` under `master` seed.
    #[must_use]
    pub fn new(master: u64, id: StreamId) -> Self {
        RngStream {
            id,
            rng: SmallRng::seed_from_u64(derive_seed(master, id)),
        }
    }

    /// The stream identifier this stream was created with.
    #[must_use]
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Draws a uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53-bit mantissa construction for an unbiased double in [0,1).
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Draws an exponential variate with the given `rate` (λ).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Draws a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range requires lo <= hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Draws an integer uniformly from `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires non-empty range");
        // Rejection sampling for an unbiased draw.
        let n64 = n as u64;
        let zone = u64::MAX - (u64::MAX % n64);
        loop {
            let v = self.rng.next_u64();
            if v < zone {
                return (v % n64) as usize;
            }
        }
    }

    /// Selects an index from a discrete distribution given by `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums to
    /// zero.
    pub fn discrete(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "discrete requires at least one weight");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0, "discrete weights must be non-negative");
                w
            })
            .sum();
        assert!(total > 0.0, "discrete weights must not all be zero");
        let mut u = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }

    /// Draws a standard normal variate (Box–Muller, polar form).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let x = self.uniform_range(-1.0, 1.0);
            let y = self.uniform_range(-1.0, 1.0);
            let s = x * x + y * y;
            if s > 0.0 && s < 1.0 {
                return x * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Draws a normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is negative.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        mean + sd * self.standard_normal()
    }

    /// Draws a Weibull variate with `shape` k and `scale` λ, a common model
    /// for time-to-compromise distributions.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    pub fn weibull(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(
            shape > 0.0 && scale > 0.0,
            "weibull parameters must be positive"
        );
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        scale * (-u.ln()).powf(1.0 / shape)
    }

    /// Draws a log-normal variate parameterized by the mean and standard
    /// deviation of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (partial Fisher–Yates).
    ///
    /// Allocates the `n`-sized pool and the returned vector on every
    /// call; hot loops should hold a reusable buffer and call
    /// [`RngStream::sample_indices_into`] instead. The two draw the
    /// same RNG schedule and produce the same sample.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut buf = Vec::new();
        self.sample_indices_into(n, k, &mut buf);
        buf.truncate(k);
        buf
    }

    /// The allocation-reusing form of [`RngStream::sample_indices`]:
    /// fills `buf` with the `n`-sized pool (reusing its capacity),
    /// performs the partial Fisher–Yates pass, and leaves the sample in
    /// `buf[..k]` — the remaining `n - k` entries are the unsampled
    /// rest of the pool, so callers that only need the sample read the
    /// prefix. In the steady state (capacity ≥ `n`) the call allocates
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices_into(&mut self, n: usize, k: usize, buf: &mut Vec<usize>) {
        assert!(k <= n, "cannot sample {k} items from {n}");
        buf.clear();
        buf.extend(0..n);
        for i in 0..k {
            let j = i + self.index(n - i);
            buf.swap(i, j);
        }
    }
}

/// A K-wide structure-of-arrays block of xoshiro256++ lane states — the
/// RNG substrate of the batched lockstep replication path.
///
/// Lane `l` seeded with `(master_l, id)` produces **exactly** the draw
/// sequence of `RngStream::new(master_l, id)`: the same SplitMix64 seed
/// expansion, the same xoshiro256++ step, the same
/// uniform/Bernoulli/index constructions. That per-lane bit-identity is
/// what lets a lockstep batch of K replications reproduce K scalar
/// replications draw for draw while the four state words advance over
/// stride-friendly arrays.
#[derive(Debug, Clone, Default)]
pub struct RngLanes {
    s0: Vec<u64>,
    s1: Vec<u64>,
    s2: Vec<u64>,
    s3: Vec<u64>,
}

impl RngLanes {
    /// An empty block; lanes are laid out by [`RngLanes::reseed`].
    #[must_use]
    pub fn new() -> Self {
        RngLanes::default()
    }

    /// The number of lanes currently laid out.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.s0.len()
    }

    /// Reseeds the block with one lane per master seed, every lane on
    /// the stream identified by `id`. Reuses the state buffers, so in
    /// the steady state (capacity ≥ `masters.len()`) reseeding
    /// allocates nothing.
    pub fn reseed(&mut self, masters: &[u64], id: StreamId) {
        self.s0.clear();
        self.s1.clear();
        self.s2.clear();
        self.s3.clear();
        for &master in masters {
            // SmallRng::seed_from_u64: four SplitMix64 draws from the
            // derived seed, with the all-zero degenerate state mapped to
            // the SplitMix64 increment (matching the vendored shim).
            let mut state = derive_seed(master, id);
            let mut s = [0u64; 4];
            for slot in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            self.s0.push(s[0]);
            self.s1.push(s[1]);
            self.s2.push(s[2]);
            self.s3.push(s[3]);
        }
    }

    /// Advances lane `lane` one xoshiro256++ step.
    ///
    /// # Panics
    ///
    /// Panics (by slice indexing) if `lane` is out of range.
    pub fn next_u64(&mut self, lane: usize) -> u64 {
        let result = self.s0[lane]
            .wrapping_add(self.s3[lane])
            .rotate_left(23)
            .wrapping_add(self.s0[lane]);
        let t = self.s1[lane] << 17;
        self.s2[lane] ^= self.s0[lane];
        self.s3[lane] ^= self.s1[lane];
        self.s1[lane] ^= self.s2[lane];
        self.s0[lane] ^= self.s3[lane];
        self.s2[lane] ^= t;
        self.s3[lane] = self.s3[lane].rotate_left(45);
        result
    }

    /// Draws a uniform value in `[0, 1)` on `lane` — the same 53-bit
    /// mantissa construction as [`RngStream::uniform`].
    pub fn uniform(&mut self, lane: usize) -> f64 {
        (self.next_u64(lane) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` on `lane` (clamped to
    /// `[0,1]`), consuming draws exactly as [`RngStream::bernoulli`].
    pub fn bernoulli(&mut self, lane: usize, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform(lane) < p
        }
    }

    /// Draws an integer uniformly from `0..n` on `lane` — the same
    /// rejection sampling as [`RngStream::index`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, lane: usize, n: usize) -> usize {
        assert!(n > 0, "index requires non-empty range");
        let n64 = n as u64;
        let zone = u64::MAX - (u64::MAX % n64);
        loop {
            let v = self.next_u64(lane);
            if v < zone {
                return (v % n64) as usize;
            }
        }
    }

    /// Copies lane `lane`'s four state words onto the stack as a
    /// [`LaneState`], so a run of draws steps in registers instead of
    /// through four bounds-checked `Vec` accesses each. Pair with
    /// [`RngLanes::commit`] to write the advanced state back; the draw
    /// sequence is identical either way.
    ///
    /// # Panics
    ///
    /// Panics (by slice indexing) if `lane` is out of range.
    #[must_use]
    pub fn checkout(&self, lane: usize) -> LaneState {
        LaneState {
            s: [self.s0[lane], self.s1[lane], self.s2[lane], self.s3[lane]],
        }
    }

    /// Writes a checked-out [`LaneState`] back into lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics (by slice indexing) if `lane` is out of range.
    pub fn commit(&mut self, lane: usize, state: LaneState) {
        self.s0[lane] = state.s[0];
        self.s1[lane] = state.s[1];
        self.s2[lane] = state.s[2];
        self.s3[lane] = state.s[3];
    }
}

/// One lane's xoshiro256++ state checked out of an [`RngLanes`] block
/// onto the stack ([`RngLanes::checkout`] / [`RngLanes::commit`]).
/// Draw-for-draw identical to the in-block methods and to
/// [`RngStream`]; existing so the lockstep inner loop pays register
/// arithmetic, not per-draw memory traffic.
#[derive(Debug, Clone, Copy)]
pub struct LaneState {
    s: [u64; 4],
}

impl LaneState {
    /// Advances one xoshiro256++ step.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` — the [`RngStream::uniform`] construction.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`, consuming draws exactly as
    /// [`RngStream::bernoulli`].
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Uniform integer in `0..n` — the [`RngStream::index`] rejection
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires non-empty range");
        let n64 = n as u64;
        let zone = u64::MAX - (u64::MAX % n64);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n64) as usize;
            }
        }
    }
}

impl RngCore for RngStream {
    fn next_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.rng.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.rng.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = RngStream::new(7, StreamId(3));
        let mut b = RngStream::new(7, StreamId(3));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = RngStream::new(7, StreamId(0));
        let mut b = RngStream::new(7, StreamId(1));
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = RngStream::new(1, StreamId(0));
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = RngStream::new(2, StreamId(0));
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = RngStream::new(3, StreamId(0));
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(-0.5));
        assert!(r.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = RngStream::new(4, StreamId(0));
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = RngStream::new(5, StreamId(0));
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        RngStream::new(0, StreamId(0)).exponential(0.0);
    }

    #[test]
    fn index_unbiased_small() {
        let mut r = RngStream::new(6, StreamId(0));
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.index(5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn discrete_respects_weights() {
        let mut r = RngStream::new(8, StreamId(0));
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[r.discrete(&[1.0, 2.0, 3.0])] += 1;
        }
        assert!((counts[0] as f64 / 60_000.0 - 1.0 / 6.0).abs() < 0.01);
        assert!((counts[2] as f64 / 60_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn normal_moments() {
        let mut r = RngStream::new(9, StreamId(0));
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let mut r = RngStream::new(10, StreamId(0));
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.weibull(1.0, 2.0)).sum::<f64>() / n as f64;
        // Weibull(k=1, λ=2) has mean λ = 2.
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = RngStream::new(11, StreamId(0));
        let s = r.sample_indices(20, 10);
        assert_eq!(s.len(), 10);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(s.iter().all(|&i| i < 20));
    }

    #[test]
    fn sample_indices_into_matches_allocating_form() {
        let mut buf = Vec::new();
        for (n, k) in [(20, 10), (7, 7), (5, 0), (1, 1), (64, 3)] {
            let mut a = RngStream::new(13, StreamId(2));
            let mut b = RngStream::new(13, StreamId(2));
            let owned = a.sample_indices(n, k);
            b.sample_indices_into(n, k, &mut buf);
            assert_eq!(owned[..], buf[..k], "n={n} k={k}");
            assert_eq!(buf.len(), n, "buffer keeps the full pool");
            // Draw schedules stay aligned afterwards.
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_lanes_match_scalar_streams_bit_for_bit() {
        let masters = [0u64, 7, 0xDEAD_BEEF, u64::MAX];
        let id = StreamId(0xA77);
        let mut lanes = RngLanes::new();
        lanes.reseed(&masters, id);
        assert_eq!(lanes.lanes(), masters.len());
        let mut scalars: Vec<RngStream> = masters.iter().map(|&m| RngStream::new(m, id)).collect();
        // Interleave lane draws in an adversarial order: per-lane
        // sequences must still match the scalar streams exactly.
        for round in 0..200 {
            for lane in 0..masters.len() {
                let l = (lane + round) % masters.len();
                match round % 3 {
                    0 => assert_eq!(lanes.next_u64(l), scalars[l].next_u64()),
                    1 => assert_eq!(lanes.uniform(l).to_bits(), scalars[l].uniform().to_bits()),
                    _ => assert_eq!(lanes.index(l, 17), scalars[l].index(17)),
                }
            }
        }
        for (l, scalar) in scalars.iter_mut().enumerate() {
            assert_eq!(lanes.bernoulli(l, 0.4), scalar.bernoulli(0.4));
            assert_eq!(lanes.bernoulli(l, 0.0), scalar.bernoulli(0.0));
            assert_eq!(lanes.bernoulli(l, 1.0), scalar.bernoulli(1.0));
        }
    }

    #[test]
    fn rng_lanes_reseed_reuses_capacity() {
        let mut lanes = RngLanes::new();
        lanes.reseed(&[1, 2, 3, 4], StreamId(9));
        let cap = (
            lanes.s0.capacity(),
            lanes.s1.capacity(),
            lanes.s2.capacity(),
            lanes.s3.capacity(),
        );
        lanes.reseed(&[5, 6], StreamId(9));
        assert_eq!(lanes.lanes(), 2);
        assert_eq!(
            (
                lanes.s0.capacity(),
                lanes.s1.capacity(),
                lanes.s2.capacity(),
                lanes.s3.capacity(),
            ),
            cap
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::new(12, StreamId(0));
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn derive_seed_spreads_bits() {
        // Adjacent streams should differ in roughly half their bits.
        let a = derive_seed(0, StreamId(0));
        let b = derive_seed(0, StreamId(1));
        let diff = (a ^ b).count_ones();
        assert!(diff > 10, "only {diff} differing bits");
    }
}
