//! The event calendar: a future-event list with stable tie-breaking.
//!
//! Cancellation is O(1) via generation-stamped slots: each pending event
//! owns a slot in a slab; cancelling bumps the slot's generation so the
//! matching heap entry is recognized as dead when it surfaces. Dead heap
//! entries are reclaimed lazily, and the heap is compacted whenever dead
//! entries outnumber live ones, so memory stays O(live events) even under
//! heavy cancel/reschedule churn (the SAN resampling policy cancels and
//! reschedules activities constantly).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// A monotonically increasing sequence number used to break ties between
/// events scheduled at the same instant. Events at equal times fire in the
/// order they were scheduled (FIFO), which makes runs reproducible.
type Seq = u64;

/// An opaque handle returned by [`Calendar::push`]; can be used to cancel
/// the event before it fires.
///
/// The handle is a `(slot, generation)` pair: the slot indexes a slab
/// entry, the generation detects reuse, so a stale token can never cancel
/// a later event that happens to occupy the same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken {
    slot: u32,
    generation: u32,
}

struct HeapEntry<E> {
    time: SimTime,
    seq: Seq,
    payload: E,
    slot: u32,
    generation: u32,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> fmt::Debug for HeapEntry<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeapEntry")
            .field("time", &self.time)
            .field("seq", &self.seq)
            .finish()
    }
}

/// Compaction is skipped below this heap size: tiny heaps are cheap to
/// scan lazily and rebuilding them would dominate.
const COMPACT_MIN_LEN: usize = 32;

/// A future-event list ordered by `(time, insertion order)`.
///
/// # Examples
///
/// ```
/// use diversify_des::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.push(SimTime::from_secs(2.0), "late");
/// cal.push(SimTime::from_secs(1.0), "early");
/// let (t, ev) = cal.pop().unwrap();
/// assert_eq!(ev, "early");
/// assert_eq!(t, SimTime::from_secs(1.0));
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: Seq,
    /// Generation per slot; a heap entry is live iff its stored generation
    /// matches its slot's current generation.
    generations: Vec<u32>,
    /// Slots whose previous event was cancelled or popped, ready for reuse.
    free_slots: Vec<u32>,
    live: usize,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            generations: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `time` and returns a
    /// token that can later be passed to [`Calendar::cancel`].
    pub fn push(&mut self, time: SimTime, payload: E) -> EventToken {
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.generations.push(0);
                // Invariant: slot indices are u32 by type; more than
                // 2^32 − 1 live slots would exhaust memory long before
                // this conversion could fail.
                #[allow(clippy::disallowed_methods)]
                u32::try_from(self.generations.len() - 1).expect("slot count fits in u32")
            }
        };
        let generation = self.generations[slot as usize];
        self.heap.push(HeapEntry {
            time,
            seq: self.next_seq,
            payload,
            slot,
            generation,
        });
        self.next_seq += 1;
        self.live += 1;
        EventToken { slot, generation }
    }

    /// Releases a slot: invalidates every outstanding token/heap entry for
    /// it and queues it for reuse.
    fn retire_slot(&mut self, slot: u32) {
        self.generations[slot as usize] = self.generations[slot as usize].wrapping_add(1);
        self.free_slots.push(slot);
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now guaranteed not to fire), `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let Some(&generation) = self.generations.get(token.slot as usize) else {
            return false;
        };
        if generation != token.generation {
            return false;
        }
        self.retire_slot(token.slot);
        self.live -= 1;
        self.maybe_compact();
        true
    }

    /// Rebuilds the heap without its dead entries once they outnumber the
    /// live ones, keeping heap memory proportional to live events.
    fn maybe_compact(&mut self) {
        if self.heap.len() < COMPACT_MIN_LEN || self.heap.len() <= 2 * self.live {
            return;
        }
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|e| self.generations[e.slot as usize] == e.generation);
        self.heap = BinaryHeap::from(entries);
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries. Returns `None` when no live events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.generations[entry.slot as usize] != entry.generation {
                continue; // stale: cancelled earlier, reclaimed now
            }
            self.retire_slot(entry.slot);
            self.live -= 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The firing time of the next live event, if any.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Lazily drop cancelled events from the top of the heap so peek is
        // accurate.
        while let Some(top) = self.heap.peek() {
            if self.generations[top.slot as usize] == top.generation {
                return Some(top.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Number of heap entries, live or dead (test/diagnostic hook for the
    /// compaction guarantee).
    #[must_use]
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Whether any live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.free_slots.clear();
        for (slot, generation) in self.generations.iter_mut().enumerate() {
            *generation = generation.wrapping_add(1);
            self.free_slots.push(slot as u32);
        }
        self.live = 0;
    }
}

impl<E> fmt::Debug for Calendar<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Calendar")
            .field("live", &self.live)
            .field("heap_len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.push(SimTime::from_secs(3.0), 3);
        cal.push(SimTime::from_secs(1.0), 1);
        cal.push(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            cal.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut cal = Calendar::new();
        let a = cal.push(SimTime::from_secs(1.0), "a");
        cal.push(SimTime::from_secs(2.0), "b");
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a), "double cancel reports false");
        assert_eq!(cal.pop().map(|(_, e)| e), Some("b"));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut cal: Calendar<u8> = Calendar::new();
        assert!(!cal.cancel(EventToken {
            slot: 99,
            generation: 0
        }));
    }

    #[test]
    fn stale_token_cannot_cancel_slot_reuse() {
        let mut cal = Calendar::new();
        let a = cal.push(SimTime::from_secs(1.0), "a");
        assert!(cal.cancel(a));
        // The new event reuses slot 0 under a bumped generation.
        let b = cal.push(SimTime::from_secs(2.0), "b");
        assert!(!cal.cancel(a), "stale token must not cancel the new event");
        assert_eq!(cal.len(), 1);
        assert!(cal.cancel(b));
        assert!(cal.is_empty());
    }

    #[test]
    fn popped_token_cannot_cancel_successor() {
        let mut cal = Calendar::new();
        let a = cal.push(SimTime::from_secs(1.0), "a");
        assert_eq!(cal.pop().map(|(_, e)| e), Some("a"));
        let _b = cal.push(SimTime::from_secs(2.0), "b");
        assert!(!cal.cancel(a));
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        let a = cal.push(SimTime::ZERO, 1);
        cal.push(SimTime::ZERO, 2);
        assert_eq!(cal.len(), 2);
        cal.cancel(a);
        assert_eq!(cal.len(), 1);
        cal.pop();
        assert!(cal.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut cal = Calendar::new();
        let a = cal.push(SimTime::from_secs(1.0), "a");
        cal.push(SimTime::from_secs(2.0), "b");
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn clear_empties_calendar() {
        let mut cal = Calendar::new();
        let a = cal.push(SimTime::ZERO, 1);
        cal.clear();
        assert!(cal.is_empty());
        assert!(cal.pop().is_none());
        assert!(!cal.cancel(a), "pre-clear tokens are invalidated");
    }

    #[test]
    fn churn_keeps_heap_bounded() {
        // The SAN resampling pattern: schedule, cancel, reschedule, forever.
        // Without compaction the heap would grow to ~iterations entries.
        let mut cal = Calendar::new();
        let mut tokens: Vec<EventToken> = (0..50)
            .map(|i| cal.push(SimTime::from_secs(f64::from(i)), i))
            .collect();
        for round in 0..2_000 {
            for t in tokens.drain(..) {
                assert!(cal.cancel(t));
            }
            for i in 0..50 {
                tokens.push(cal.push(SimTime::from_secs(f64::from(round * 100 + i)), i));
            }
            assert_eq!(cal.len(), 50);
            assert!(
                cal.heap_len() <= 2 * cal.len() + COMPACT_MIN_LEN,
                "heap {} entries for {} live after round {round}",
                cal.heap_len(),
                cal.len()
            );
        }
        // Slots are recycled rather than grown without bound.
        assert!(cal.generations.len() <= 128);
    }

    #[test]
    fn compaction_preserves_order_and_payloads() {
        let mut cal = Calendar::new();
        let mut keep = Vec::new();
        for i in 0..200 {
            let tok = cal.push(SimTime::from_secs(f64::from(i)), i);
            if i % 5 == 0 {
                keep.push(i);
            } else {
                cal.cancel(tok);
            }
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, keep);
    }
}
