//! The event calendar: a future-event list with stable tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// A monotonically increasing sequence number used to break ties between
/// events scheduled at the same instant. Events at equal times fire in the
/// order they were scheduled (FIFO), which makes runs reproducible.
type Seq = u64;

/// An opaque handle returned by [`Calendar::push`]; can be used to cancel
/// the event before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

struct HeapEntry<E> {
    time: SimTime,
    seq: Seq,
    payload: E,
    token: EventToken,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> fmt::Debug for HeapEntry<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeapEntry")
            .field("time", &self.time)
            .field("seq", &self.seq)
            .finish()
    }
}

/// A future-event list ordered by `(time, insertion order)`.
///
/// # Examples
///
/// ```
/// use diversify_des::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.push(SimTime::from_secs(2.0), "late");
/// cal.push(SimTime::from_secs(1.0), "early");
/// let (t, ev) = cal.pop().unwrap();
/// assert_eq!(ev, "early");
/// assert_eq!(t, SimTime::from_secs(1.0));
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: Seq,
    cancelled: std::collections::HashSet<EventToken>,
    live: usize,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            live: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `time` and returns a
    /// token that can later be passed to [`Calendar::cancel`].
    pub fn push(&mut self, time: SimTime, payload: E) -> EventToken {
        let token = EventToken(self.next_seq);
        self.heap.push(HeapEntry {
            time,
            seq: self.next_seq,
            payload,
            token,
        });
        self.next_seq += 1;
        self.live += 1;
        token
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now guaranteed not to fire), `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(token) {
            if self.live > 0 {
                self.live -= 1;
            }
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries. Returns `None` when no live events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.token) {
                continue;
            }
            self.live -= 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The firing time of the next live event, if any.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Lazily drop cancelled events from the top of the heap so peek is
        // accurate.
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.token) {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.token);
            } else {
                return Some(top.time);
            }
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether any live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.live = 0;
    }
}

impl<E> fmt::Debug for Calendar<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Calendar")
            .field("live", &self.live)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.push(SimTime::from_secs(3.0), 3);
        cal.push(SimTime::from_secs(1.0), 1);
        cal.push(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            cal.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut cal = Calendar::new();
        let a = cal.push(SimTime::from_secs(1.0), "a");
        cal.push(SimTime::from_secs(2.0), "b");
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a), "double cancel reports false");
        assert_eq!(cal.pop().map(|(_, e)| e), Some("b"));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut cal: Calendar<u8> = Calendar::new();
        assert!(!cal.cancel(EventToken(99)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        let a = cal.push(SimTime::ZERO, 1);
        cal.push(SimTime::ZERO, 2);
        assert_eq!(cal.len(), 2);
        cal.cancel(a);
        assert_eq!(cal.len(), 1);
        cal.pop();
        assert!(cal.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut cal = Calendar::new();
        let a = cal.push(SimTime::from_secs(1.0), "a");
        cal.push(SimTime::from_secs(2.0), "b");
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn clear_empties_calendar() {
        let mut cal = Calendar::new();
        cal.push(SimTime::ZERO, 1);
        cal.clear();
        assert!(cal.is_empty());
        assert!(cal.pop().is_none());
    }
}
