//! Stop conditions for simulation runs.

use crate::time::SimTime;

/// Determines when [`Engine::run_with`](crate::Engine::run_with) returns.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum StopCondition {
    /// Run until the event calendar is empty.
    #[default]
    Exhausted,
    /// Run until the clock would pass the given horizon. Events scheduled at
    /// exactly the horizon still fire.
    AtTime(SimTime),
    /// Run until the given number of events have been handled.
    AfterEvents(u64),
}

impl StopCondition {
    /// The time horizon imposed by this condition, if any.
    #[must_use]
    pub fn horizon(&self) -> Option<SimTime> {
        match self {
            StopCondition::AtTime(t) => Some(*t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_only_for_at_time() {
        assert_eq!(StopCondition::Exhausted.horizon(), None);
        assert_eq!(StopCondition::AfterEvents(5).horizon(), None);
        assert_eq!(
            StopCondition::AtTime(SimTime::from_secs(2.0)).horizon(),
            Some(SimTime::from_secs(2.0))
        );
    }

    #[test]
    fn default_is_exhausted() {
        assert_eq!(StopCondition::default(), StopCondition::Exhausted);
    }
}
