//! # diversify-des
//!
//! A deterministic discrete-event simulation (DES) kernel.
//!
//! This crate is the bottom-most substrate of the *Diversify!* (DSN 2013)
//! reproduction. Every stochastic model in the workspace — the stochastic
//! activity network solver in `diversify-san`, the SCADA plant simulator in
//! `diversify-scada`, and the attack-campaign engine in `diversify-attack` —
//! advances virtual time through the [`Engine`] defined here.
//!
//! ## Design
//!
//! * **Event calendar** — a binary-heap [`Calendar`] with *stable*
//!   tie-breaking: events scheduled for the same instant fire in insertion
//!   order, which keeps replications bit-for-bit reproducible.
//! * **Virtual time** — [`SimTime`], a newtype over `f64` seconds that is
//!   totally ordered and rejects NaN at construction.
//! * **Deterministic randomness** — [`RngStream`]s derived from a single
//!   master seed with SplitMix64 so independent model components draw from
//!   independent, reproducible streams.
//! * **Stop conditions** — [`StopCondition`] values compose limits on time
//!   and event count.
//! * **Observation** — [`Welford`] and [`TimeWeighted`] accumulators plus a
//!   [`ReplicationRunner`] for independent-replication experiments.
//! * **Execution** — the [`exec`] layer: a [`ReplicationPlan`] describing
//!   seeds and batch structure, run by a serial or parallel [`Executor`]
//!   and folded by pluggable mergeable [`Collector`]s (streaming
//!   `empty`/`accumulate`/`merge`/`finish`, never a stored sample of
//!   every replication). [`Executor::run_adaptive`] executes batch-sized
//!   rounds until a [`StopRule`] precision target is met. Every
//!   replication loop in the workspace goes through this one seam.
//! * **Rare events** — the [`splitting`] module: fixed-effort multilevel
//!   splitting (RESTART) over the monotone levels of a [`StagedTask`],
//!   estimating a rare probability as a product of per-level
//!   conditionals with the executor's deterministic seed schedule and
//!   serial ≡ parallel bit-identity intact.
//! * **Fault tolerance** — every replication executes unwind-caught; the
//!   budgeted executor paths record failures ([`ReplicationFailure`]),
//!   retry them deterministically from their own seeds ([`RetryPolicy`]),
//!   bound work with a [`Budget`] (replication cap, wall-clock deadline,
//!   cooperative [`CancelToken`]) and degrade gracefully to a
//!   [`PartialRun`] over whatever completed — with surviving
//!   replications bit-identical to a fault-free run. The [`faults`]
//!   module provides the deterministic fault-injection harness that
//!   proves those guarantees.
//!
//! ## Example
//!
//! ```
//! use diversify_des::{Engine, Model, Context, SimTime};
//!
//! /// A counter that re-schedules itself every second, five times.
//! struct Ticker { ticks: u32 }
//!
//! #[derive(Debug, Clone, PartialEq)]
//! enum Ev { Tick }
//!
//! impl Model for Ticker {
//!     type Event = Ev;
//!     fn handle(&mut self, ctx: &mut Context<Ev>, _ev: Ev) {
//!         self.ticks += 1;
//!         if self.ticks < 5 {
//!             ctx.schedule_in(SimTime::from_secs(1.0), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Ticker { ticks: 0 }, 42);
//! engine.schedule_at(SimTime::ZERO, Ev::Tick);
//! engine.run();
//! assert_eq!(engine.model().ticks, 5);
//! assert_eq!(engine.now(), SimTime::from_secs(4.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::disallowed_methods))]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod calendar;
pub mod engine;
pub mod exec;
pub mod faults;
pub mod observe;
pub mod replication;
pub mod rng;
pub mod splitting;
pub mod stop;
pub mod time;

pub use calendar::{Calendar, EventToken};
pub use engine::RunOutcome;
pub use engine::{Context, Engine, Model};
pub use exec::{
    AdaptiveRun, BatchTask, Budget, BudgetOutcome, CancelToken, Collector, ExecMode, Executor,
    FailureCause, PartialRun, PlanError, Precision, Replication, ReplicationFailure,
    ReplicationPlan, Reseed, RetryPolicy, RunPolicy, StopRule,
};
pub use faults::{FaultKind, FaultPlan, InjectedPanic};
pub use observe::{TimeWeighted, Welford};
pub use replication::{ReplicationRunner, ReplicationSummary};
pub use rng::{derive_seed, LaneState, RngLanes, RngStream, StreamId};
pub use splitting::{
    LevelRun, LevelSummary, Splitting, SplittingRun, StagedTask, SPLITTING_STREAM_NAMESPACE,
};
pub use stop::StopCondition;
pub use time::SimTime;
