//! The simulation engine: couples a model, the event calendar, the clock and
//! a deterministic RNG.

use crate::calendar::{Calendar, EventToken};
use crate::rng::{RngStream, StreamId};
use crate::stop::StopCondition;
use crate::time::SimTime;
use std::collections::HashMap;
use std::fmt;

/// A discrete-event model.
///
/// Implementors define an event payload type and a handler invoked each time
/// an event fires. The handler receives a [`Context`] for scheduling further
/// events, reading the clock and drawing random numbers.
///
/// # Examples
///
/// See the crate-level documentation for a complete example.
pub trait Model {
    /// The event payload type processed by this model.
    type Event;

    /// Handles one event. Called with the clock already advanced to the
    /// event's firing time.
    fn handle(&mut self, ctx: &mut Context<Self::Event>, event: Self::Event);
}

/// Scheduling and randomness facilities exposed to a [`Model`] while it
/// handles an event.
pub struct Context<'a, E> {
    now: SimTime,
    calendar: &'a mut Calendar<E>,
    streams: &'a mut HashMap<StreamId, RngStream>,
    master_seed: u64,
    events_handled: u64,
    stop_requested: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events handled so far (including the current one).
    #[must_use]
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) -> EventToken {
        self.calendar.push(self.now + delay, event)
    }

    /// Schedules `event` at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — causality must not be violated.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        self.calendar.push(at, event)
    }

    /// Cancels a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.calendar.cancel(token)
    }

    /// Borrows the RNG stream with the given identifier, creating it on
    /// first use from the engine's master seed.
    pub fn rng(&mut self, stream: StreamId) -> &mut RngStream {
        let master = self.master_seed;
        self.streams
            .entry(stream)
            .or_insert_with(|| RngStream::new(master, stream))
    }

    /// Requests the engine stop after the current event completes.
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }
}

impl<'a, E> fmt::Debug for Context<'a, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("events_handled", &self.events_handled)
            .finish()
    }
}

/// The discrete-event simulation engine.
///
/// Owns the model, the calendar, the clock and the RNG streams. Construct
/// with [`Engine::new`], seed initial events with [`Engine::schedule_at`],
/// then drive with [`Engine::run`] or [`Engine::run_until`].
pub struct Engine<M: Model> {
    model: M,
    calendar: Calendar<M::Event>,
    now: SimTime,
    master_seed: u64,
    streams: HashMap<StreamId, RngStream>,
    events_handled: u64,
    stop_requested: bool,
}

impl<M: Model> Engine<M> {
    /// Creates an engine around `model` with the given deterministic master
    /// seed.
    #[must_use]
    pub fn new(model: M, master_seed: u64) -> Self {
        Engine {
            model,
            calendar: Calendar::new(),
            now: SimTime::ZERO,
            master_seed,
            streams: HashMap::new(),
            events_handled: 0,
            stop_requested: false,
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handled so far.
    #[must_use]
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Borrows the model immutably.
    #[must_use]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Borrows the model mutably (e.g. to inject faults between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine and returns the model.
    #[must_use]
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedules an initial event at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) -> EventToken {
        assert!(at >= self.now, "cannot schedule into the past");
        self.calendar.push(at, event)
    }

    /// Schedules an initial event `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimTime, event: M::Event) -> EventToken {
        self.calendar.push(self.now + delay, event)
    }

    /// Borrows an RNG stream (outside of event handling).
    pub fn rng(&mut self, stream: StreamId) -> &mut RngStream {
        let master = self.master_seed;
        self.streams
            .entry(stream)
            .or_insert_with(|| RngStream::new(master, stream))
    }

    /// Runs until the calendar empties.
    ///
    /// Returns the reason the run stopped.
    pub fn run(&mut self) -> RunOutcome {
        self.run_with(StopCondition::Exhausted)
    }

    /// Runs until `horizon` (inclusive of events at exactly `horizon`) or
    /// calendar exhaustion, whichever comes first. When the horizon is hit
    /// the clock is advanced to `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.run_with(StopCondition::AtTime(horizon))
    }

    /// Runs under an arbitrary [`StopCondition`].
    pub fn run_with(&mut self, stop: StopCondition) -> RunOutcome {
        self.stop_requested = false;
        loop {
            if self.stop_requested {
                return RunOutcome::Requested;
            }
            if let StopCondition::AfterEvents(n) = stop {
                if self.events_handled >= n {
                    return RunOutcome::EventLimit;
                }
            }
            let Some(next_time) = self.calendar.peek_time() else {
                return RunOutcome::Exhausted;
            };
            if let Some(h) = stop.horizon() {
                if next_time > h {
                    self.now = h;
                    return RunOutcome::Horizon;
                }
            }
            // Invariant: `peek_time` just returned `Some`, and nothing
            // between the peek and this pop touches the calendar.
            #[allow(clippy::disallowed_methods)]
            let (time, event) = self.calendar.pop().expect("peeked event exists");
            debug_assert!(time >= self.now, "calendar produced a past event");
            self.now = time;
            self.events_handled += 1;
            let mut ctx = Context {
                now: self.now,
                calendar: &mut self.calendar,
                streams: &mut self.streams,
                master_seed: self.master_seed,
                events_handled: self.events_handled,
                stop_requested: &mut self.stop_requested,
            };
            self.model.handle(&mut ctx, event);
        }
    }
}

impl<M: Model + fmt::Debug> fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("events_handled", &self.events_handled)
            .field("pending", &self.calendar.len())
            .field("model", &self.model)
            .finish()
    }
}

/// Why a call to [`Engine::run_with`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The calendar ran out of events.
    Exhausted,
    /// The time horizon was reached with events still pending.
    Horizon,
    /// The configured event-count limit was reached.
    EventLimit,
    /// The model called [`Context::request_stop`].
    Requested,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Counter {
        fired: Vec<(f64, u32)>,
        respawn: bool,
    }

    #[derive(Debug, Clone)]
    enum Ev {
        Ping(u32),
    }

    impl Model for Counter {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Context<Ev>, Ev::Ping(n): Ev) {
            self.fired.push((ctx.now().as_secs(), n));
            if self.respawn && n < 10 {
                ctx.schedule_in(SimTime::from_secs(1.0), Ev::Ping(n + 1));
            }
        }
    }

    #[test]
    fn runs_to_exhaustion() {
        let mut e = Engine::new(
            Counter {
                fired: vec![],
                respawn: true,
            },
            1,
        );
        e.schedule_at(SimTime::ZERO, Ev::Ping(0));
        assert_eq!(e.run(), RunOutcome::Exhausted);
        assert_eq!(e.model().fired.len(), 11);
        assert_eq!(e.now(), SimTime::from_secs(10.0));
    }

    #[test]
    fn horizon_stops_and_advances_clock() {
        let mut e = Engine::new(
            Counter {
                fired: vec![],
                respawn: true,
            },
            1,
        );
        e.schedule_at(SimTime::ZERO, Ev::Ping(0));
        assert_eq!(e.run_until(SimTime::from_secs(3.5)), RunOutcome::Horizon);
        assert_eq!(e.model().fired.len(), 4); // t = 0,1,2,3
        assert_eq!(e.now(), SimTime::from_secs(3.5));
    }

    #[test]
    fn event_limit_stops() {
        let mut e = Engine::new(
            Counter {
                fired: vec![],
                respawn: true,
            },
            1,
        );
        e.schedule_at(SimTime::ZERO, Ev::Ping(0));
        assert_eq!(
            e.run_with(StopCondition::AfterEvents(3)),
            RunOutcome::EventLimit
        );
        assert_eq!(e.events_handled(), 3);
    }

    #[derive(Debug)]
    struct Stopper;
    impl Model for Stopper {
        type Event = u8;
        fn handle(&mut self, ctx: &mut Context<u8>, ev: u8) {
            ctx.schedule_in(SimTime::from_secs(1.0), ev + 1);
            if ev >= 2 {
                ctx.request_stop();
            }
        }
    }

    #[test]
    fn model_can_request_stop() {
        let mut e = Engine::new(Stopper, 0);
        e.schedule_at(SimTime::ZERO, 0u8);
        assert_eq!(e.run(), RunOutcome::Requested);
        assert_eq!(e.now(), SimTime::from_secs(2.0));
    }

    #[test]
    fn rng_streams_persist_across_events() {
        #[derive(Debug)]
        struct Draws(Vec<f64>);
        impl Model for Draws {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<()>, (): ()) {
                let v = ctx.rng(StreamId(0)).uniform();
                self.0.push(v);
            }
        }
        let mut e = Engine::new(Draws(vec![]), 99);
        for i in 0..5 {
            e.schedule_at(SimTime::from_secs(i as f64), ());
        }
        e.run();
        let draws = &e.model().0;
        assert_eq!(draws.len(), 5);
        // Stream continues (values all distinct with overwhelming probability).
        let set: std::collections::HashSet<u64> = draws.iter().map(|f| f.to_bits()).collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new(
            Counter {
                fired: vec![],
                respawn: false,
            },
            1,
        );
        e.schedule_at(SimTime::from_secs(5.0), Ev::Ping(0));
        e.run();
        e.schedule_at(SimTime::from_secs(1.0), Ev::Ping(1));
    }

    #[test]
    fn identical_seeds_identical_traces() {
        fn trace(seed: u64) -> Vec<(f64, u32)> {
            #[derive(Debug)]
            struct R(Vec<(f64, u32)>);
            impl Model for R {
                type Event = u32;
                fn handle(&mut self, ctx: &mut Context<u32>, ev: u32) {
                    self.0.push((ctx.now().as_secs(), ev));
                    if ev < 20 {
                        let d = ctx.rng(StreamId(1)).exponential(1.0);
                        ctx.schedule_in(SimTime::from_secs(d), ev + 1);
                    }
                }
            }
            let mut e = Engine::new(R(vec![]), seed);
            e.schedule_at(SimTime::ZERO, 0);
            e.run();
            e.into_model().0
        }
        assert_eq!(trace(42), trace(42));
        assert_ne!(trace(42), trace(43));
    }
}
