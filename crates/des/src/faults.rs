//! Deterministic fault injection for the replication executor.
//!
//! Robustness claims are only as good as the faults they were tested
//! against, so this module makes faults *first-class, seeded inputs*:
//! a [`FaultPlan`] decides — purely from a seed or an explicit list —
//! which replication indices misbehave and how ([`FaultKind`]: panic,
//! corrupted output, or an injected slowdown), and [`FaultPlan::wrap`]
//! turns any replication task into one that misbehaves exactly there.
//! Because the plan is index-keyed and the executor's seeds are pure
//! functions of the index, a faulted run is reproducible bit for bit:
//! the same seed produces the same faults at the same indices, and
//! every *surviving* replication is bit-identical to the fault-free
//! run.
//!
//! Faults can be **persistent** (every attempt at a faulted index
//! fails — what a seed-deterministic bug looks like) or **transient**
//! ([`FaultPlan::transient`]: the first *k* attempts fail, then the
//! index recovers — what an environmental hiccup looks like, and the
//! case [`RetryPolicy`](crate::exec::RetryPolicy) with
//! [`Reseed::SameSeed`](crate::exec::Reseed::SameSeed) is designed to
//! erase completely).
//!
//! Injected panics carry an [`InjectedPanic`] payload rather than a
//! string, so [`silence_injected_panics`] can install a panic hook that
//! keeps *expected* unwinds out of test output while real panics still
//! print.

use crate::exec::Replication;
use crate::rng::{derive_seed, RngStream, StreamId};
use std::any::Any;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Once;
use std::time::Duration;

/// The stream namespace fault decisions are drawn under — disjoint from
/// every replication-seed namespace in the workspace, so injecting
/// faults never perturbs the draws of the replications themselves.
pub const FAULT_STREAM_NAMESPACE: u64 = 0xFA_0170_0000;

/// What an injected fault does to its replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The task panics (with an [`InjectedPanic`] payload) before doing
    /// any work — the crash-isolation case.
    Panic,
    /// The task runs, but its output is passed through the `corrupt`
    /// closure given to [`FaultPlan::wrap`] (typically poisoning it
    /// with NaN) — the invalid-output case a validator must catch.
    CorruptOutput,
    /// The task sleeps this long before running — the straggler case a
    /// wall-clock budget must bound.
    Slow {
        /// Injected delay before the task executes.
        micros: u32,
    },
}

/// The panic payload of [`FaultKind::Panic`]. A typed payload (not a
/// string) so the [`silence_injected_panics`] hook and tests can tell
/// injected unwinds from real bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic {
    /// The replication index the fault was injected at.
    pub index: u32,
}

/// Where and how faults strike: an index-keyed table of [`FaultKind`]s
/// plus a transience threshold, with per-index hit counters so repeated
/// attempts at one index can observe "fails, fails, recovers".
///
/// Plans are deterministic by construction — [`FaultPlan::seeded`]
/// draws the table from a seed through the same SplitMix64 derivation
/// the executor uses, and [`FaultPlan::with_fault`] places faults
/// explicitly. Hit counters are interior-mutable so a `&FaultPlan`
/// can be shared with a parallel executor; call [`FaultPlan::reset`]
/// between runs that must observe identical transience.
#[derive(Debug)]
pub struct FaultPlan {
    kinds: Vec<Option<FaultKind>>,
    fail_attempts: u32,
    hits: Vec<AtomicU32>,
}

impl FaultPlan {
    /// A plan over `total` replication indices with no faults.
    #[must_use]
    pub fn none(total: u32) -> Self {
        let n = total as usize;
        FaultPlan {
            kinds: vec![None; n],
            fail_attempts: u32::MAX,
            hits: (0..n).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Places `kind` at replication `index` (indices past `total` are
    /// ignored, matching how the executor never visits them).
    #[must_use]
    pub fn with_fault(mut self, index: u32, kind: FaultKind) -> Self {
        if let Some(slot) = self.kinds.get_mut(index as usize) {
            *slot = Some(kind);
        }
        self
    }

    /// Draws a plan from `seed`: each index independently faults with
    /// probability `rate`, picking uniformly among `kinds`. The
    /// decision for index *i* depends only on `(seed, i)`, so growing
    /// `total` never re-rolls earlier indices.
    #[must_use]
    pub fn seeded(seed: u64, total: u32, rate: f64, kinds: &[FaultKind]) -> Self {
        let mut plan = FaultPlan::none(total);
        if kinds.is_empty() || rate <= 0.0 {
            return plan;
        }
        for i in 0..total {
            let mut rng = RngStream::new(
                derive_seed(seed, StreamId(FAULT_STREAM_NAMESPACE ^ u64::from(i))),
                StreamId(0),
            );
            if rng.uniform() < rate {
                // uniform() < 1.0 strictly, so the index never overflows.
                let pick = (rng.uniform() * kinds.len() as f64) as usize;
                plan.kinds[i as usize] = Some(kinds[pick]);
            }
        }
        plan
    }

    /// Makes every fault transient: an index's fault fires on its first
    /// `attempts` invocations, then the index behaves normally — the
    /// shape a seed-preserving retry erases completely.
    #[must_use]
    pub fn transient(mut self, attempts: u32) -> Self {
        self.fail_attempts = attempts;
        self
    }

    /// The indices this plan faults, in order, with their kinds.
    pub fn faulted(&self) -> impl Iterator<Item = (u32, FaultKind)> + '_ {
        self.kinds
            .iter()
            .enumerate()
            .filter_map(|(i, kind)| kind.map(|k| (i as u32, k)))
    }

    /// Whether `index` is faulted at all (regardless of transience).
    #[must_use]
    pub fn is_faulted(&self, index: u32) -> bool {
        self.kinds
            .get(index as usize)
            .is_some_and(|kind| kind.is_some())
    }

    /// Clears every hit counter, so a reused plan replays its
    /// transience schedule from scratch.
    pub fn reset(&self) {
        for hit in &self.hits {
            hit.store(0, Ordering::Relaxed);
        }
    }

    /// Consumes one invocation at `index`: returns the fault to inject
    /// now, or `None` if the index is clean or has recovered.
    pub fn arm(&self, index: u32) -> Option<FaultKind> {
        let kind = (*self.kinds.get(index as usize)?)?;
        let prior = self.hits[index as usize].fetch_add(1, Ordering::Relaxed);
        (prior < self.fail_attempts).then_some(kind)
    }

    /// Wraps a replication task so it misbehaves exactly where this
    /// plan says: [`FaultKind::Panic`] raises an [`InjectedPanic`],
    /// [`FaultKind::CorruptOutput`] maps the task's output through
    /// `corrupt`, [`FaultKind::Slow`] sleeps first. Clean indices call
    /// straight through, so the wrapped task is bit-identical to the
    /// raw one everywhere the plan is clean.
    pub fn wrap<'p, W, T, F, G>(
        &'p self,
        task: F,
        corrupt: G,
    ) -> impl Fn(&mut W, Replication) -> T + 'p
    where
        F: Fn(&mut W, Replication) -> T + 'p,
        G: Fn(T) -> T + 'p,
    {
        move |ws, rep| match self.arm(rep.index) {
            Some(FaultKind::Panic) => std::panic::panic_any(InjectedPanic { index: rep.index }),
            Some(FaultKind::CorruptOutput) => corrupt(task(ws, rep)),
            Some(FaultKind::Slow { micros }) => {
                std::thread::sleep(Duration::from_micros(u64::from(micros)));
                task(ws, rep)
            }
            None => task(ws, rep),
        }
    }
}

/// Renders a caught panic payload for a
/// [`ReplicationFailure`](crate::exec::ReplicationFailure) record:
/// `&str` and `String` payloads verbatim, [`InjectedPanic`] by its
/// index, anything else opaquely.
#[must_use]
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else if let Some(injected) = payload.downcast_ref::<InjectedPanic>() {
        format!("injected panic at replication {}", injected.index)
    } else {
        "opaque panic payload".to_string()
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the
/// default "thread panicked" report for [`InjectedPanic`] payloads and
/// chains to the previous hook for everything else. Fault-injection
/// tests call this so hundreds of *expected* unwinds don't bury a real
/// failure in noise; real panics keep their backtraces.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_prefix_stable() {
        let kinds = [FaultKind::Panic, FaultKind::CorruptOutput];
        let a = FaultPlan::seeded(42, 200, 0.1, &kinds);
        let b = FaultPlan::seeded(42, 200, 0.1, &kinds);
        assert_eq!(
            a.faulted().collect::<Vec<_>>(),
            b.faulted().collect::<Vec<_>>()
        );
        // Growing the plan keeps every earlier decision.
        let longer = FaultPlan::seeded(42, 400, 0.1, &kinds);
        let prefix: Vec<_> = longer.faulted().filter(|(i, _)| *i < 200).collect();
        assert_eq!(a.faulted().collect::<Vec<_>>(), prefix);
        // Other seeds draw other faults.
        let other = FaultPlan::seeded(43, 200, 0.1, &kinds);
        assert_ne!(
            a.faulted().collect::<Vec<_>>(),
            other.faulted().collect::<Vec<_>>()
        );
    }

    #[test]
    fn seeded_rate_is_roughly_honored() {
        let plan = FaultPlan::seeded(7, 10_000, 0.05, &[FaultKind::Panic]);
        let count = plan.faulted().count();
        assert!(
            (300..=700).contains(&count),
            "got {count} faults at rate 0.05"
        );
    }

    #[test]
    fn transient_faults_recover_after_threshold() {
        let plan = FaultPlan::none(4)
            .with_fault(2, FaultKind::Panic)
            .transient(2);
        assert_eq!(plan.arm(2), Some(FaultKind::Panic));
        assert_eq!(plan.arm(2), Some(FaultKind::Panic));
        assert_eq!(plan.arm(2), None, "index recovers on the third attempt");
        assert_eq!(plan.arm(1), None, "clean index never faults");
        plan.reset();
        assert_eq!(
            plan.arm(2),
            Some(FaultKind::Panic),
            "reset replays transience"
        );
    }

    #[test]
    fn wrap_injects_only_at_faulted_indices() {
        silence_injected_panics();
        let plan = FaultPlan::none(3)
            .with_fault(0, FaultKind::Panic)
            .with_fault(1, FaultKind::CorruptOutput);
        let task = |_: &mut (), rep: Replication| rep.seed as f64;
        let wrapped = plan.wrap(task, |_| f64::NAN);
        let rep = |index| Replication {
            index,
            seed: 100 + u64::from(index),
        };
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| wrapped(&mut (), rep(0))));
        let payload = caught.expect_err("index 0 panics");
        assert_eq!(
            payload.downcast_ref::<InjectedPanic>(),
            Some(&InjectedPanic { index: 0 })
        );
        assert!(wrapped(&mut (), rep(1)).is_nan(), "index 1 is corrupted");
        assert_eq!(wrapped(&mut (), rep(2)), 102.0, "index 2 passes through");
    }

    #[test]
    fn panic_messages_render_all_payload_shapes() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&String::from("heap boom")), "heap boom");
        assert_eq!(
            panic_message(&InjectedPanic { index: 9 }),
            "injected panic at replication 9"
        );
        assert_eq!(panic_message(&17u32), "opaque panic payload");
    }
}
