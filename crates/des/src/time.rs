//! Virtual simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in seconds from the start of the
/// simulation.
///
/// `SimTime` is a thin newtype over `f64` that upholds two invariants:
///
/// * the value is never NaN (checked at construction), and
/// * the value is never negative.
///
/// Because of these invariants `SimTime` is totally ordered ([`Ord`]) and can
/// be used directly as a priority inside the event calendar.
///
/// # Examples
///
/// ```
/// use diversify_des::SimTime;
///
/// let a = SimTime::from_secs(1.5);
/// let b = SimTime::from_secs(2.5);
/// assert!(a < b);
/// assert_eq!((a + SimTime::from_secs(1.0)), b);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time later than every reachable simulation instant.
    pub const INFINITY: SimTime = SimTime(f64::INFINITY);

    /// Creates a time from a number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative; virtual time is always a
    /// well-ordered, non-negative quantity.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime must not be NaN");
        assert!(secs >= 0.0, "SimTime must be non-negative, got {secs}");
        SimTime(secs)
    }

    /// Creates a time from minutes.
    #[must_use]
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a time from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Creates a time from days.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Self::from_secs(days * 86_400.0)
    }

    /// Returns the time as seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the time as hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Returns the time as days.
    #[must_use]
    pub fn as_days(self) -> f64 {
        self.0 / 86_400.0
    }

    /// Returns true if this time is finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Saturating subtraction: returns `self - other`, clamped at zero.
    #[must_use]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        if other.0 >= self.0 {
            SimTime::ZERO
        } else {
            SimTime(self.0 - other.0)
        }
    }

    /// The earlier of two times.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

// SAFETY of ordering: the constructor rejects NaN, so `partial_cmp` never
// returns `None` for values built through the public API.
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Invariant: every public constructor rejects NaN, so
        // `partial_cmp` is total over constructed values.
        #[allow(clippy::disallowed_methods)]
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is never NaN by construction")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics (in debug builds) if the result would be negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(
            self.0 >= rhs.0,
            "SimTime subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}s)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl From<SimTime> for f64 {
    fn from(t: SimTime) -> f64 {
        t.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_convert_units() {
        assert_eq!(SimTime::from_mins(1.0), SimTime::from_secs(60.0));
        assert_eq!(SimTime::from_hours(1.0), SimTime::from_secs(3600.0));
        assert_eq!(SimTime::from_days(1.0), SimTime::from_secs(86_400.0));
    }

    #[test]
    fn accessors_round_trip() {
        let t = SimTime::from_secs(7200.0);
        assert_eq!(t.as_secs(), 7200.0);
        assert_eq!(t.as_hours(), 2.0);
        assert!((t.as_days() - 2.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3.0),
            SimTime::ZERO,
            SimTime::INFINITY,
            SimTime::from_secs(1.0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(1.0),
                SimTime::from_secs(3.0),
                SimTime::INFINITY
            ]
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a), SimTime::from_secs(1.0));
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        t += SimTime::from_secs(0.5);
        t += SimTime::from_secs(0.5);
        assert_eq!(t, SimTime::from_secs(1.0));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
    }

    #[test]
    fn infinity_not_finite() {
        assert!(!SimTime::INFINITY.is_finite());
        assert!(SimTime::ZERO.is_finite());
    }
}
