//! Multilevel splitting (RESTART) for rare-event estimation.
//!
//! Plain Monte-Carlo needs on the order of `1/p` replications to see a
//! single success of a probability-`p` event — hopeless at the
//! `p ≈ 1e-6` design points the high-diversity configurations produce.
//! Multilevel splitting factors the rare event into a chain of nested,
//! *monotone* intermediate milestones (levels) and estimates the product
//! of per-level conditional probabilities instead: a fixed-effort
//! population of replications runs toward each level, the survivors'
//! states are checkpointed, and the next level's population resumes from
//! clones of those checkpoints. Each conditional probability is
//! moderate, so every level is cheap to resolve; the product reaches
//! deep into the tail at a fraction of the brute-force cost.
//!
//! The engine here is generic: anything that can (a) partition its
//! trajectory into monotone levels and (b) checkpoint/resume a
//! replication implements [`StagedTask`] and gets the estimator, the
//! deterministic seed schedule, and serial ≡ parallel bit-identity for
//! free. The attack crate's campaign simulator and the exponential
//! stage-chain walk (the analytic differential oracle) are the two
//! implementations in this workspace.
//!
//! # Determinism contract
//!
//! Every replication of level `ℓ` draws its seed from the plan
//! derivation `derive_seed(master, StreamId(namespace ^ stride(ℓ) ^ i))`
//! where `stride(ℓ) = (ℓ+1) · 2⁴⁰` keeps level streams disjoint from
//! the `i < 2³²` clone indices. Survivor states are materialized in
//! replication order by the executor's fixed fold shape
//! ([`VecCollector`]), and clone `i` of the next level resumes from
//! `survivors[i mod survivors.len()]` — all pure functions of the
//! master seed and the level structure, never of scheduling. A parallel
//! run is therefore bit-identical to a serial one.

use crate::exec::{
    BatchTask, ExecMode, Executor, PlanError, Replication, ReplicationPlan, VecCollector,
};

/// The default stream namespace splitting plans derive their seeds
/// under (disjoint from the fixed/adaptive campaign namespaces, so a
/// splitting estimate never reuses a plain-MC replication's stream).
pub const SPLITTING_STREAM_NAMESPACE: u64 = 0x5B17_0000_0000_0000;

/// The outcome of advancing one replication across one level: the
/// checkpointed state where it stopped, whether it crossed the level
/// boundary, and the simulation cost it consumed.
#[derive(Debug, Clone)]
pub struct LevelRun<S> {
    /// Checkpoint at segment exit (a survivor's state seeds the next
    /// level's clones).
    pub state: S,
    /// Whether the level boundary was crossed.
    pub reached: bool,
    /// Cost of the segment in model ticks (the unit the speedup over
    /// brute-force MC is measured in).
    pub ticks: u64,
}

/// A rare event factored into nested monotone levels, with
/// checkpoint/resume per replication — the model-side contract of the
/// splitting engine.
///
/// Implementations must guarantee two properties:
///
/// * **Monotone nesting** — a trajectory that crossed level `ℓ` has
///   crossed every earlier level, and crossing is permanent. This is
///   what makes the product of conditional fractions estimate the
///   intersection probability.
/// * **Resume purity** — `run_level` must be a pure function of
///   `(level, from, seed)` plus the immutable task, never of workspace
///   history; the engine reuses one workspace per worker across many
///   segments.
pub trait StagedTask: Sync {
    /// A checkpointed replication state (cheap to clone — it is cloned
    /// once per surviving replication, not per tick).
    type State: Clone + Send + Sync;
    /// Reusable per-worker scratch state.
    type Workspace: Send;

    /// Number of levels; the final level must coincide with the rare
    /// event itself.
    fn levels(&self) -> usize;

    /// A fresh per-worker workspace.
    fn workspace(&self) -> Self::Workspace;

    /// Advances one replication toward the boundary of `level`:
    /// starting fresh when `from` is `None` (only ever the case at
    /// level 0) and resuming from a parent checkpoint otherwise, using
    /// exactly the RNG stream seeded by `seed`.
    fn run_level(
        &self,
        ws: &mut Self::Workspace,
        level: usize,
        from: Option<&Self::State>,
        seed: u64,
    ) -> LevelRun<Self::State>;

    /// Advances a whole lane group across `level`: one replication per
    /// `(froms[i], seeds[i])` pair, appended to `out` in order. The
    /// default is the scalar loop over [`StagedTask::run_level`];
    /// implementations with a lockstep engine override it, and any
    /// override must stay bit-identical to the scalar loop per lane —
    /// that is what lets [`Splitting`] route level populations through
    /// `Executor::run_ws_lockstep` without perturbing the estimator.
    fn run_level_batch(
        &self,
        ws: &mut Self::Workspace,
        level: usize,
        froms: &[Option<&Self::State>],
        seeds: &[u64],
        out: &mut Vec<LevelRun<Self::State>>,
    ) {
        debug_assert_eq!(froms.len(), seeds.len(), "one parent slot per seed");
        for (from, &seed) in froms.iter().zip(seeds) {
            out.push(self.run_level(ws, level, *from, seed));
        }
    }
}

/// [`BatchTask`] adapter running one splitting level's population
/// through the lockstep executor: scalar units resolve their parent and
/// call [`StagedTask::run_level`]; full-width lane groups gather
/// parents and seeds and call [`StagedTask::run_level_batch`]. Parent
/// lookup (`index mod parents.len()`) is identical on both paths, so
/// lockstep ≡ scalar holds whenever the task's batch override does.
struct LevelBatch<'a, T: StagedTask> {
    task: &'a T,
    level: usize,
    parents: &'a [T::State],
}

impl<T: StagedTask> LevelBatch<'_, T> {
    fn parent(&self, index: u32) -> Option<&T::State> {
        if self.parents.is_empty() {
            None
        } else {
            Some(&self.parents[index as usize % self.parents.len()])
        }
    }
}

impl<T: StagedTask> BatchTask for LevelBatch<'_, T> {
    type Workspace = T::Workspace;
    type Output = LevelRun<T::State>;

    fn workspace(&self) -> T::Workspace {
        self.task.workspace()
    }

    fn run_scalar(&self, ws: &mut T::Workspace, rep: Replication) -> LevelRun<T::State> {
        self.task
            .run_level(ws, self.level, self.parent(rep.index), rep.seed)
    }

    fn run_batch(
        &self,
        ws: &mut T::Workspace,
        reps: &[Replication],
        out: &mut Vec<LevelRun<T::State>>,
    ) {
        let froms: Vec<Option<&T::State>> = reps.iter().map(|r| self.parent(r.index)).collect();
        let seeds: Vec<u64> = reps.iter().map(|r| r.seed).collect();
        self.task
            .run_level_batch(ws, self.level, &froms, &seeds, out);
    }
}

/// Per-level tally of a splitting run: the conditional-probability
/// numerator/denominator and the cost spent on the level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSummary {
    /// Replications launched toward the level (the fixed effort).
    pub attempts: u32,
    /// Replications that crossed the level boundary.
    pub survivors: u32,
    /// Total model ticks consumed by the level's population.
    pub ticks: u64,
}

/// The result of a multilevel-splitting run: the product estimator, the
/// per-level tallies it is composed of, and the total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SplittingRun {
    /// The product-of-conditionals estimate of the rare-event
    /// probability (0 when any level dried up).
    pub estimate: f64,
    /// Per-level tallies, in level order. When a level dries up the
    /// vector ends there — later levels were never attempted, and the
    /// estimate is 0.
    pub levels: Vec<LevelSummary>,
    /// Total model ticks across every level — the cost to compare
    /// against a brute-force plan.
    pub total_ticks: u64,
    /// The fixed per-level population.
    pub population: u32,
}

impl SplittingRun {
    /// The `(successes, trials)` pairs of the executed levels — the
    /// input shape of `diversify_stats::product_proportion_ci`. When a
    /// level dried up the pairs cover only the executed prefix; an
    /// interval over them still bounds the full product, because the
    /// unattempted conditionals are at most 1.
    #[must_use]
    pub fn conditionals(&self) -> Vec<(u64, u64)> {
        self.levels
            .iter()
            .map(|l| (u64::from(l.survivors), u64::from(l.attempts)))
            .collect()
    }

    /// Whether some level produced no survivor (the estimate is then an
    /// exact 0 with only an upper confidence bound).
    #[must_use]
    pub fn dried_up(&self) -> bool {
        self.levels.last().is_some_and(|l| l.survivors == 0)
    }
}

/// XOR stride separating the seed streams of different levels. Level
/// bits live at `2⁴⁰` and above; clone indices below `2³²`; the two can
/// never collide.
fn level_namespace(namespace: u64, level: usize) -> u64 {
    namespace ^ ((level as u64 + 1) << 40)
}

/// A fixed-effort multilevel-splitting schedule: population size, master
/// seed, and stream namespace. Immutable once built; [`Splitting::run`]
/// executes it against any [`StagedTask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Splitting {
    population: u32,
    master_seed: u64,
    namespace: u64,
    /// Lockstep lane width for level execution; `< 2` keeps the scalar
    /// per-replication path.
    lockstep_lanes: usize,
}

impl Splitting {
    /// A schedule running `population` replications per level.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::EmptyPlan`] when `population` is zero.
    pub fn try_new(population: u32, master_seed: u64) -> Result<Self, PlanError> {
        if population == 0 {
            return Err(PlanError::EmptyPlan);
        }
        Ok(Splitting {
            population,
            master_seed,
            namespace: SPLITTING_STREAM_NAMESPACE,
            lockstep_lanes: 1,
        })
    }

    /// Replaces the stream namespace (for callers embedding several
    /// independent splitting estimates under one master seed).
    #[must_use]
    pub const fn with_namespace(mut self, namespace: u64) -> Self {
        self.namespace = namespace;
        self
    }

    /// Routes each level's population through the lockstep executor
    /// path (`Executor::run_ws_lockstep`) in lane groups of `lanes` —
    /// the level population is a natural batch, so tasks with a batched
    /// [`StagedTask::run_level_batch`] amortize shared state across
    /// lanes. `lanes < 2` keeps the scalar path. Results are
    /// bit-identical either way (the lockstep invariant), so this is
    /// purely a throughput knob.
    #[must_use]
    pub const fn with_lockstep(mut self, lanes: usize) -> Self {
        self.lockstep_lanes = lanes;
        self
    }

    /// The per-level population.
    #[must_use]
    pub fn population(&self) -> u32 {
        self.population
    }

    /// Runs the schedule: level by level, each level's population on
    /// the executor (one workspace per worker, survivors materialized
    /// in replication order), clones resuming from
    /// `survivors[i mod len]`. Stops early with a zero estimate when a
    /// level dries up.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::EmptyPlan`] when the task declares zero
    /// levels.
    pub fn run<T: StagedTask>(
        &self,
        task: &T,
        executor: &Executor,
    ) -> Result<SplittingRun, PlanError> {
        if task.levels() == 0 {
            return Err(PlanError::EmptyPlan);
        }
        let mut survivors: Vec<T::State> = Vec::new();
        let mut levels = Vec::with_capacity(task.levels());
        let mut estimate = 1.0f64;
        let mut total_ticks = 0u64;
        for level in 0..task.levels() {
            let plan = ReplicationPlan::try_flat(self.population, self.master_seed)?
                .with_namespace(level_namespace(self.namespace, level));
            let parents = std::mem::take(&mut survivors);
            let runs: Vec<LevelRun<T::State>> = if self.lockstep_lanes > 1 {
                executor.run_ws_lockstep(
                    &plan,
                    &LevelBatch {
                        task,
                        level,
                        parents: &parents,
                    },
                    self.lockstep_lanes,
                    &VecCollector,
                )
            } else {
                executor.run_ws(
                    &plan,
                    || task.workspace(),
                    |ws, rep| {
                        let from = if parents.is_empty() {
                            None
                        } else {
                            Some(&parents[rep.index as usize % parents.len()])
                        };
                        task.run_level(ws, level, from, rep.seed)
                    },
                    &VecCollector,
                )
            };
            let ticks: u64 = runs.iter().map(|r| r.ticks).sum();
            total_ticks += ticks;
            survivors = runs
                .into_iter()
                .filter(|r| r.reached)
                .map(|r| r.state)
                .collect();
            let summary = LevelSummary {
                attempts: self.population,
                survivors: survivors.len() as u32,
                ticks,
            };
            estimate *= f64::from(summary.survivors) / f64::from(summary.attempts);
            levels.push(summary);
            if survivors.is_empty() {
                break;
            }
        }
        Ok(SplittingRun {
            estimate,
            levels,
            total_ticks,
            population: self.population,
        })
    }

    /// [`Splitting::run`] on an explicit execution mode — the entry
    /// point the bit-identity tests drive.
    ///
    /// # Errors
    ///
    /// As for [`Splitting::run`].
    pub fn run_mode<T: StagedTask>(
        &self,
        task: &T,
        mode: ExecMode,
    ) -> Result<SplittingRun, PlanError> {
        let executor = match mode {
            ExecMode::Serial => Executor::serial(),
            ExecMode::Parallel => Executor::parallel(),
        };
        self.run(task, &executor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RngStream, StreamId};

    /// A synthetic chain: level ℓ is crossed with probability `p[ℓ]`,
    /// independently per replication. The state carries the number of
    /// crossed levels so resume plumbing is observable.
    struct CoinChain {
        p: Vec<f64>,
    }

    impl StagedTask for CoinChain {
        type State = u64;
        type Workspace = ();

        fn levels(&self) -> usize {
            self.p.len()
        }

        fn workspace(&self) {}

        fn run_level(
            &self,
            (): &mut (),
            level: usize,
            from: Option<&u64>,
            seed: u64,
        ) -> LevelRun<u64> {
            assert_eq!(from.copied().unwrap_or(0), level as u64, "resume depth");
            let mut rng = RngStream::new(seed, StreamId(0x5111));
            LevelRun {
                state: level as u64 + 1,
                reached: rng.bernoulli(self.p[level]),
                ticks: 1,
            }
        }
    }

    #[test]
    fn estimates_product_of_conditionals() {
        let task = CoinChain {
            p: vec![0.5, 0.5, 0.5],
        };
        let run = Splitting::try_new(4096, 42)
            .unwrap()
            .run(&task, &Executor::serial())
            .unwrap();
        assert_eq!(run.levels.len(), 3);
        assert_eq!(run.total_ticks, 3 * 4096);
        assert!(
            (run.estimate - 0.125).abs() < 0.03,
            "estimate {} too far from 0.125",
            run.estimate
        );
        assert!(!run.dried_up());
        let cond = run.conditionals();
        assert_eq!(cond.len(), 3);
        for &(k, n) in &cond {
            assert_eq!(n, 4096);
            assert!(k > 0 && k < n);
        }
    }

    #[test]
    fn serial_and_parallel_are_bit_identical() {
        let task = CoinChain {
            p: vec![0.4, 0.6, 0.3, 0.5],
        };
        let sched = Splitting::try_new(512, 0xFEED).unwrap();
        let serial = sched.run_mode(&task, ExecMode::Serial).unwrap();
        let parallel = sched.run_mode(&task, ExecMode::Parallel).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(
            serial.estimate.to_bits(),
            parallel.estimate.to_bits(),
            "estimator must be bit-identical across schedulers"
        );
    }

    #[test]
    fn dried_level_stops_early_with_zero_estimate() {
        let task = CoinChain {
            p: vec![0.5, 0.0, 0.9],
        };
        let run = Splitting::try_new(256, 7)
            .unwrap()
            .run(&task, &Executor::serial())
            .unwrap();
        assert_eq!(run.estimate, 0.0);
        assert_eq!(run.levels.len(), 2, "level 2 never attempted");
        assert!(run.dried_up());
        assert_eq!(run.conditionals()[1].0, 0);
    }

    #[test]
    fn reruns_are_reproducible_and_seeds_decorrelate() {
        let task = CoinChain { p: vec![0.5, 0.5] };
        let a = Splitting::try_new(128, 1).unwrap();
        let exec = Executor::serial();
        assert_eq!(a.run(&task, &exec).unwrap(), a.run(&task, &exec).unwrap());
        let b = Splitting::try_new(128, 2).unwrap();
        // Different master seeds must not replay the same trajectory
        // tallies (probability of collision on 128 coin flips is tiny).
        assert_ne!(
            a.run(&task, &exec).unwrap().conditionals(),
            b.run(&task, &exec).unwrap().conditionals()
        );
    }

    #[test]
    fn lockstep_levels_match_scalar_levels_bit_for_bit() {
        let task = CoinChain {
            p: vec![0.5, 0.4, 0.6],
        };
        let scalar = Splitting::try_new(257, 0xBA7C)
            .unwrap()
            .run(&task, &Executor::serial())
            .unwrap();
        // Widths with and without remainder lanes, serial and parallel.
        for lanes in [2usize, 8, 64, 300] {
            let sched = Splitting::try_new(257, 0xBA7C)
                .unwrap()
                .with_lockstep(lanes);
            for exec in [Executor::serial(), Executor::parallel()] {
                let run = sched.run(&task, &exec).unwrap();
                assert_eq!(run, scalar, "{lanes} lanes");
                assert_eq!(run.estimate.to_bits(), scalar.estimate.to_bits());
            }
        }
    }

    #[test]
    fn invalid_configurations_are_typed_errors() {
        assert!(matches!(
            Splitting::try_new(0, 1),
            Err(PlanError::EmptyPlan)
        ));
        let empty = CoinChain { p: vec![] };
        let run = Splitting::try_new(8, 1)
            .unwrap()
            .run(&empty, &Executor::serial());
        assert!(matches!(run, Err(PlanError::EmptyPlan)));
    }
}
