//! Online statistical accumulators used to observe simulations.

use crate::time::SimTime;
use std::fmt;

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable single-pass accumulation; used throughout the
/// workspace for per-replication indicator summaries.
///
/// # Examples
///
/// ```
/// use diversify_des::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population (biased) variance.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_sd(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sample_sd() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford/Chan).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

/// A time-weighted average of a piecewise-constant signal, e.g. the
/// *compromised ratio* indicator over a simulation run.
///
/// Call [`TimeWeighted::record`] each time the signal changes; the
/// accumulator integrates the previous value over the elapsed interval.
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    integral: f64,
    started: bool,
    start_time: SimTime,
}

impl TimeWeighted {
    /// Creates an accumulator starting at `t0` with initial signal `value`.
    #[must_use]
    pub fn new(t0: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: t0,
            last_value: value,
            integral: 0.0,
            started: true,
            start_time: t0,
        }
    }

    /// Records that the signal changed to `value` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous record.
    pub fn record(&mut self, t: SimTime, value: f64) {
        assert!(t >= self.last_time, "time-weighted records must be ordered");
        self.integral += self.last_value * (t - self.last_time).as_secs();
        self.last_time = t;
        self.last_value = value;
    }

    /// Closes the window at `t` and returns the time-weighted mean over
    /// `[t0, t]`. Returns the last value when the window has zero width.
    #[must_use]
    pub fn mean_until(&self, t: SimTime) -> f64 {
        assert!(t >= self.last_time, "window end precedes last record");
        let total = (t - self.start_time).as_secs();
        if total == 0.0 {
            return self.last_value;
        }
        let full = self.integral + self.last_value * (t - self.last_time).as_secs();
        full / total
    }

    /// The most recently recorded value.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Whether the accumulator has been initialized.
    #[must_use]
    pub fn is_started(&self) -> bool {
        self.started
    }
}

impl fmt::Display for Welford {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} max={:.6}",
            self.n,
            self.mean,
            self.sample_sd(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_welford_is_zeroish() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.standard_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let w: Welford = [5.0].into_iter().collect();
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.min(), 5.0);
        assert_eq!(w.max(), 5.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let w: Welford = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-10);
        assert!((w.sample_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let full: Welford = xs.iter().copied().collect();
        let a: Welford = xs[..200].iter().copied().collect();
        let b: Welford = xs[200..].iter().copied().collect();
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), full.count());
        assert!((merged.mean() - full.mean()).abs() < 1e-10);
        assert!((merged.sample_variance() - full.sample_variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        let mut b = a;
        b.merge(&Welford::new());
        assert_eq!(a, b);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.mean(), a.mean());
    }

    #[test]
    fn time_weighted_constant_signal() {
        let tw = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert_eq!(tw.mean_until(SimTime::from_secs(10.0)), 3.0);
    }

    #[test]
    fn time_weighted_step_signal() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.record(SimTime::from_secs(5.0), 1.0);
        // 0 for 5s, 1 for 5s => mean 0.5 over 10s.
        assert!((tw.mean_until(SimTime::from_secs(10.0)) - 0.5).abs() < 1e-12);
        assert_eq!(tw.current(), 1.0);
    }

    #[test]
    fn time_weighted_zero_window() {
        let tw = TimeWeighted::new(SimTime::from_secs(2.0), 7.0);
        assert_eq!(tw.mean_until(SimTime::from_secs(2.0)), 7.0);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn time_weighted_rejects_out_of_order() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(5.0), 0.0);
        tw.record(SimTime::from_secs(1.0), 1.0);
    }

    #[test]
    fn display_is_nonempty() {
        let w: Welford = [1.0, 2.0].into_iter().collect();
        assert!(w.to_string().contains("n=2"));
    }
}
