//! Independent-replication experiment harness.
//!
//! Monte-Carlo estimation in the *Diversify!* pipeline repeats a stochastic
//! simulation under independent seeds and aggregates scalar outputs. The
//! [`ReplicationRunner`] is a thin facade over the unified
//! [`exec`](crate::exec) layer: the seed schedule lives in a
//! [`ReplicationPlan`] so that the *i*-th replication of a given experiment
//! is reproducible regardless of how many replications are requested or
//! which [`Executor`] mode runs them.

use crate::exec::{Collector, Executor, ReplicationPlan};
use crate::observe::Welford;
use std::fmt;

/// Runs `n` independent replications of a seeded experiment and aggregates
/// one or more named scalar outputs.
///
/// # Examples
///
/// ```
/// use diversify_des::{ReplicationRunner, RngStream, StreamId};
///
/// let runner = ReplicationRunner::new(1234, 1000);
/// let summary = runner.run(|seed| {
///     let mut rng = RngStream::new(seed, StreamId(0));
///     vec![("u".to_string(), rng.uniform())]
/// });
/// let u = summary.metric("u").unwrap();
/// assert!((u.mean() - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct ReplicationRunner {
    plan: ReplicationPlan,
    executor: Executor,
}

impl ReplicationRunner {
    /// Creates a runner with a master seed and replication count.
    ///
    /// # Panics
    ///
    /// Panics if `replications` is zero.
    #[must_use]
    pub fn new(master_seed: u64, replications: u32) -> Self {
        assert!(replications > 0, "at least one replication required");
        ReplicationRunner {
            plan: ReplicationPlan::flat(replications, master_seed),
            executor: Executor::default(),
        }
    }

    /// Replaces the executor (e.g. [`Executor::serial`] for debugging).
    /// Results are identical in every mode.
    #[must_use]
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// The underlying replication plan.
    #[must_use]
    pub fn plan(&self) -> &ReplicationPlan {
        &self.plan
    }

    /// The number of replications this runner performs.
    #[must_use]
    pub fn replications(&self) -> u32 {
        self.plan.total()
    }

    /// The seed used for replication index `i`.
    #[must_use]
    pub fn seed_for(&self, i: u32) -> u64 {
        self.plan.seed_for(i)
    }

    /// Runs the experiment once per replication. The closure receives the
    /// replication seed and returns `(metric name, value)` pairs; values are
    /// accumulated per name across replications, in replication order.
    pub fn run<F>(&self, experiment: F) -> ReplicationSummary
    where
        F: Fn(u64) -> Vec<(String, f64)> + Sync + Send,
    {
        self.executor
            .collect(&self.plan, |rep| experiment(rep.seed), &MetricsCollector)
    }

    /// Runs the experiment once per replication with a reusable
    /// per-worker workspace (see [`Executor::run_ws`]): `init` builds
    /// the workspace, and the experiment receives `&mut W` plus the
    /// replication seed. The seed schedule and aggregation are identical
    /// to [`ReplicationRunner::run`], so for experiments whose outputs
    /// do not depend on workspace history the two are bit-identical —
    /// the workspace only amortizes setup (simulators, scratch buffers)
    /// across replications.
    pub fn run_ws<W, I, F>(&self, init: I, experiment: F) -> ReplicationSummary
    where
        W: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, u64) -> Vec<(String, f64)> + Sync + Send,
    {
        self.executor.run_ws(
            &self.plan,
            init,
            |ws, rep| experiment(ws, rep.seed),
            &MetricsCollector,
        )
    }
}

/// A [`Collector`] folding named scalar outputs into per-metric
/// [`Welford`] accumulators (first-seen metric order). The accumulator
/// is the summary itself — O(metrics) state, merged across rounds via
/// the parallel Welford update, never a stored sample vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsCollector;

impl Collector<Vec<(String, f64)>> for MetricsCollector {
    type Accum = ReplicationSummary;
    type Output = ReplicationSummary;

    fn empty(&self) -> ReplicationSummary {
        ReplicationSummary::default()
    }

    fn accumulate(
        &self,
        _plan: &ReplicationPlan,
        acc: &mut ReplicationSummary,
        _rep: crate::exec::Replication,
        outputs: Vec<(String, f64)>,
    ) {
        for (name, value) in outputs {
            match acc.metrics.iter_mut().find(|(n, _)| *n == name) {
                Some((_, w)) => w.push(value),
                None => {
                    let mut w = Welford::new();
                    w.push(value);
                    acc.metrics.push((name, w));
                }
            }
        }
    }

    fn merge(&self, into: &mut ReplicationSummary, other: ReplicationSummary) {
        for (name, w) in other.metrics {
            match into.metrics.iter_mut().find(|(n, _)| *n == name) {
                Some((_, existing)) => existing.merge(&w),
                None => into.metrics.push((name, w)),
            }
        }
    }

    fn finish(&self, _plan: &ReplicationPlan, acc: ReplicationSummary) -> ReplicationSummary {
        acc
    }
}

/// Aggregated outputs of a replicated experiment.
#[derive(Debug, Clone, Default)]
pub struct ReplicationSummary {
    metrics: Vec<(String, Welford)>,
}

impl ReplicationSummary {
    /// The accumulator for a named metric, if any replication reported it.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<&Welford> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, w)| w)
    }

    /// Iterates over `(name, accumulator)` pairs in first-seen order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Welford)> {
        self.metrics.iter().map(|(n, w)| (n.as_str(), w))
    }

    /// Number of distinct metrics observed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no metrics were observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

impl fmt::Display for ReplicationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, w) in &self.metrics {
            writeln!(f, "{name}: {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RngStream, StreamId};

    #[test]
    fn seeds_are_stable_per_index() {
        let a = ReplicationRunner::new(9, 10);
        let b = ReplicationRunner::new(9, 10_000);
        for i in 0..10 {
            assert_eq!(a.seed_for(i), b.seed_for(i));
        }
    }

    #[test]
    fn seeds_differ_between_indices() {
        let r = ReplicationRunner::new(9, 100);
        let seeds: std::collections::HashSet<u64> = (0..100).map(|i| r.seed_for(i)).collect();
        assert_eq!(seeds.len(), 100);
    }

    #[test]
    fn aggregates_multiple_metrics() {
        let r = ReplicationRunner::new(5, 500);
        let s = r.run(|seed| {
            let mut rng = RngStream::new(seed, StreamId(0));
            vec![
                ("a".to_string(), rng.uniform()),
                ("b".to_string(), 2.0 * rng.uniform()),
            ]
        });
        assert_eq!(s.len(), 2);
        assert_eq!(s.metric("a").unwrap().count(), 500);
        assert!((s.metric("b").unwrap().mean() - 1.0).abs() < 0.1);
        assert!(s.metric("missing").is_none());
    }

    #[test]
    fn metrics_can_be_conditional() {
        // A metric reported in only some replications still aggregates.
        let r = ReplicationRunner::new(5, 100);
        let s = r.run(|seed| {
            if seed % 2 == 0 {
                vec![("rare".to_string(), 1.0)]
            } else {
                vec![]
            }
        });
        let rare = s.metric("rare").unwrap();
        assert!(rare.count() > 0);
        assert!(rare.count() < 100);
    }

    #[test]
    fn serial_and_parallel_summaries_match() {
        let experiment = |seed: u64| {
            let mut rng = RngStream::new(seed, StreamId(3));
            vec![("x".to_string(), rng.uniform())]
        };
        let parallel = ReplicationRunner::new(11, 300).run(experiment);
        let serial = ReplicationRunner::new(11, 300)
            .with_executor(Executor::serial())
            .run(experiment);
        let (p, s) = (parallel.metric("x").unwrap(), serial.metric("x").unwrap());
        assert_eq!(p.count(), s.count());
        assert_eq!(p.mean().to_bits(), s.mean().to_bits());
        assert_eq!(p.sample_variance().to_bits(), s.sample_variance().to_bits());
    }

    #[test]
    fn run_ws_matches_run() {
        let experiment = |seed: u64| {
            let mut rng = RngStream::new(seed, StreamId(7));
            vec![("x".to_string(), rng.uniform())]
        };
        let plain = ReplicationRunner::new(21, 200).run(experiment);
        let ws = ReplicationRunner::new(21, 200).run_ws(Vec::<f64>::new, |scratch, seed| {
            scratch.push(seed as f64); // workspace history must not leak
            let mut rng = RngStream::new(seed, StreamId(7));
            vec![("x".to_string(), rng.uniform())]
        });
        let (p, w) = (plain.metric("x").unwrap(), ws.metric("x").unwrap());
        assert_eq!(p.count(), w.count());
        assert_eq!(p.mean().to_bits(), w.mean().to_bits());
        assert_eq!(p.sample_variance().to_bits(), w.sample_variance().to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_replications_rejected() {
        let _ = ReplicationRunner::new(0, 0);
    }

    #[test]
    fn display_lists_metrics() {
        let r = ReplicationRunner::new(1, 3);
        let s = r.run(|_| vec![("x".to_string(), 1.0)]);
        assert!(s.to_string().contains("x:"));
    }
}
