//! Independent-replication experiment harness.
//!
//! Monte-Carlo estimation in the *Diversify!* pipeline repeats a stochastic
//! simulation under independent seeds and aggregates scalar outputs. The
//! [`ReplicationRunner`] owns the seed schedule so that the *i*-th
//! replication of a given experiment is reproducible regardless of how many
//! replications are requested.

use crate::observe::Welford;
use std::fmt;

/// Runs `n` independent replications of a seeded experiment and aggregates
/// one or more named scalar outputs.
///
/// # Examples
///
/// ```
/// use diversify_des::{ReplicationRunner, RngStream, StreamId};
///
/// let runner = ReplicationRunner::new(1234, 1000);
/// let summary = runner.run(|seed| {
///     let mut rng = RngStream::new(seed, StreamId(0));
///     vec![("u".to_string(), rng.uniform())]
/// });
/// let u = summary.metric("u").unwrap();
/// assert!((u.mean() - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct ReplicationRunner {
    master_seed: u64,
    replications: u32,
}

impl ReplicationRunner {
    /// Creates a runner with a master seed and replication count.
    ///
    /// # Panics
    ///
    /// Panics if `replications` is zero.
    #[must_use]
    pub fn new(master_seed: u64, replications: u32) -> Self {
        assert!(replications > 0, "at least one replication required");
        ReplicationRunner {
            master_seed,
            replications,
        }
    }

    /// The number of replications this runner performs.
    #[must_use]
    pub fn replications(&self) -> u32 {
        self.replications
    }

    /// The seed used for replication index `i`.
    #[must_use]
    pub fn seed_for(&self, i: u32) -> u64 {
        crate::rng::derive_seed(
            self.master_seed,
            crate::rng::StreamId(REPLICATION_SEED_NAMESPACE ^ u64::from(i)),
        )
    }

    /// Runs the experiment once per replication. The closure receives the
    /// replication seed and returns `(metric name, value)` pairs; values are
    /// accumulated per name across replications.
    pub fn run<F>(&self, mut experiment: F) -> ReplicationSummary
    where
        F: FnMut(u64) -> Vec<(String, f64)>,
    {
        let mut metrics: Vec<(String, Welford)> = Vec::new();
        for i in 0..self.replications {
            let outputs = experiment(self.seed_for(i));
            for (name, value) in outputs {
                match metrics.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, w)) => w.push(value),
                    None => {
                        let mut w = Welford::new();
                        w.push(value);
                        metrics.push((name, w));
                    }
                }
            }
        }
        ReplicationSummary { metrics }
    }
}

/// Aggregated outputs of a replicated experiment.
#[derive(Debug, Clone, Default)]
pub struct ReplicationSummary {
    metrics: Vec<(String, Welford)>,
}

impl ReplicationSummary {
    /// The accumulator for a named metric, if any replication reported it.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<&Welford> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, w)| w)
    }

    /// Iterates over `(name, accumulator)` pairs in first-seen order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Welford)> {
        self.metrics.iter().map(|(n, w)| (n.as_str(), w))
    }

    /// Number of distinct metrics observed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no metrics were observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

impl fmt::Display for ReplicationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, w) in &self.metrics {
            writeln!(f, "{name}: {w}")?;
        }
        Ok(())
    }
}

/// A distinct constant namespace for replication seeds so they cannot
/// collide with model-level stream ids.
const REPLICATION_SEED_NAMESPACE: u64 = 0x5EED_0000_0000_0000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RngStream, StreamId};

    #[test]
    fn seeds_are_stable_per_index() {
        let a = ReplicationRunner::new(9, 10);
        let b = ReplicationRunner::new(9, 10_000);
        for i in 0..10 {
            assert_eq!(a.seed_for(i), b.seed_for(i));
        }
    }

    #[test]
    fn seeds_differ_between_indices() {
        let r = ReplicationRunner::new(9, 100);
        let seeds: std::collections::HashSet<u64> = (0..100).map(|i| r.seed_for(i)).collect();
        assert_eq!(seeds.len(), 100);
    }

    #[test]
    fn aggregates_multiple_metrics() {
        let r = ReplicationRunner::new(5, 500);
        let s = r.run(|seed| {
            let mut rng = RngStream::new(seed, StreamId(0));
            vec![
                ("a".to_string(), rng.uniform()),
                ("b".to_string(), 2.0 * rng.uniform()),
            ]
        });
        assert_eq!(s.len(), 2);
        assert_eq!(s.metric("a").unwrap().count(), 500);
        assert!((s.metric("b").unwrap().mean() - 1.0).abs() < 0.1);
        assert!(s.metric("missing").is_none());
    }

    #[test]
    fn metrics_can_be_conditional() {
        // A metric reported in only some replications still aggregates.
        let r = ReplicationRunner::new(5, 100);
        let s = r.run(|seed| {
            if seed % 2 == 0 {
                vec![("rare".to_string(), 1.0)]
            } else {
                vec![]
            }
        });
        let rare = s.metric("rare").unwrap();
        assert!(rare.count() > 0);
        assert!(rare.count() < 100);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_replications_rejected() {
        let _ = ReplicationRunner::new(0, 0);
    }

    #[test]
    fn display_lists_metrics() {
        let r = ReplicationRunner::new(1, 3);
        let s = r.run(|_| vec![("x".to_string(), 1.0)]);
        assert!(s.to_string().contains("x:"));
    }
}
