//! Error type for SAN model construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors arising while building or executing a stochastic activity
/// network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SanError {
    /// The model has no activities.
    EmptyModel,
    /// An arc or gate refers to a place that does not exist.
    UnknownPlace {
        /// The offending place index.
        index: usize,
    },
    /// An activity has no cases (it must have at least one output effect).
    NoCases {
        /// Name of the offending activity.
        activity: String,
    },
    /// Case weights are invalid (negative or all-zero).
    BadCaseWeights {
        /// Name of the offending activity.
        activity: String,
    },
    /// A firing-distribution parameter is out of domain.
    BadDistribution {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// The simulator detected an instantaneous-activity livelock (an
    /// unbounded cascade of zero-time firings).
    InstantaneousLivelock {
        /// The number of consecutive zero-time firings that triggered the
        /// detector.
        limit: u32,
    },
    /// The analytic backend requires every timed activity to be
    /// exponential (the model must be a CTMC), but this one is not.
    NotExponential {
        /// Name of the offending activity.
        activity: String,
    },
    /// State-space exploration exceeded the configured cap. Either raise
    /// the cap or route the model to the Monte-Carlo backend.
    StateSpaceCap {
        /// The configured maximum number of tangible states.
        cap: usize,
    },
    /// Vanishing-state elimination exceeded its cascade-depth limit — the
    /// instantaneous activities form a zero-time loop.
    VanishingLoop {
        /// The depth at which the elimination gave up.
        depth: u32,
    },
    /// The requested analytic computation is not defined for this model
    /// or reward (e.g. a steady-state first-passage query).
    AnalyticUnsupported {
        /// Description of the unsupported combination.
        what: &'static str,
    },
}

impl fmt::Display for SanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanError::EmptyModel => write!(f, "model has no activities"),
            SanError::UnknownPlace { index } => {
                write!(f, "reference to unknown place index {index}")
            }
            SanError::NoCases { activity } => {
                write!(f, "activity '{activity}' has no cases")
            }
            SanError::BadCaseWeights { activity } => {
                write!(f, "activity '{activity}' has invalid case weights")
            }
            SanError::BadDistribution { what } => {
                write!(f, "invalid firing distribution: {what}")
            }
            SanError::InstantaneousLivelock { limit } => {
                write!(
                    f,
                    "instantaneous activities fired {limit} times at one instant; livelock suspected"
                )
            }
            SanError::NotExponential { activity } => {
                write!(
                    f,
                    "activity '{activity}' is not exponential; the analytic CTMC backend \
                     requires exponential timed activities"
                )
            }
            SanError::StateSpaceCap { cap } => {
                write!(
                    f,
                    "reachable state space exceeds the configured cap of {cap} tangible states"
                )
            }
            SanError::VanishingLoop { depth } => {
                write!(
                    f,
                    "vanishing-state elimination exceeded depth {depth}; \
                     instantaneous activities form a zero-time loop"
                )
            }
            SanError::AnalyticUnsupported { what } => {
                write!(f, "analytic backend does not support {what}")
            }
        }
    }
}

impl Error for SanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        let cases: Vec<SanError> = vec![
            SanError::EmptyModel,
            SanError::UnknownPlace { index: 3 },
            SanError::NoCases {
                activity: "a".into(),
            },
            SanError::BadCaseWeights {
                activity: "a".into(),
            },
            SanError::BadDistribution { what: "rate > 0" },
            SanError::InstantaneousLivelock { limit: 10_000 },
            SanError::NotExponential {
                activity: "a".into(),
            },
            SanError::StateSpaceCap { cap: 100 },
            SanError::VanishingLoop { depth: 64 },
            SanError::AnalyticUnsupported {
                what: "steady-state first passage",
            },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync>() {}
        takes_err::<SanError>();
    }
}
