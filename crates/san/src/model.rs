//! Core SAN structure: places, markings and the immutable model.

use crate::activity::Activity;
use crate::error::SanError;
use std::fmt;

/// Identifies a place within one [`SanModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) usize);

impl PlaceId {
    /// The underlying index (stable for the lifetime of the model).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifies an activity within one [`SanModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActivityId(pub(crate) usize);

impl ActivityId {
    /// The underlying index (stable for the lifetime of the model).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A token assignment to every place — the SAN state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marking {
    tokens: Vec<u32>,
}

impl Marking {
    /// Creates a marking with the given token counts.
    #[must_use]
    pub fn new(tokens: Vec<u32>) -> Self {
        Marking { tokens }
    }

    /// Token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if the place does not belong to this marking's model.
    #[must_use]
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.tokens[place.0]
    }

    /// Sets the token count of `place`.
    pub fn set_tokens(&mut self, place: PlaceId, count: u32) {
        self.tokens[place.0] = count;
    }

    /// Adds `n` tokens to `place`.
    pub fn add_tokens(&mut self, place: PlaceId, n: u32) {
        self.tokens[place.0] = self.tokens[place.0].saturating_add(n);
    }

    /// Removes `n` tokens from `place`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the place holds fewer than `n` tokens —
    /// enabling rules must prevent this.
    pub fn remove_tokens(&mut self, place: PlaceId, n: u32) {
        debug_assert!(
            self.tokens[place.0] >= n,
            "removing {n} tokens from place {} holding {}",
            place.0,
            self.tokens[place.0]
        );
        self.tokens[place.0] = self.tokens[place.0].saturating_sub(n);
    }

    /// Total tokens across all places.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.tokens.iter().sum()
    }

    /// Number of places.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the marking has no places.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Raw view of the token vector.
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.tokens
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// The marking-dependency index, derived once at model-build time.
///
/// For every place it records which activities' enablement can depend on
/// that place (input arcs plus declared gate read-sets), split by timing
/// class, and for every `(activity, case)` pair the set of places a
/// firing writes (arcs plus declared gate write-sets). The simulator uses
/// it to visit only affected activities after each event instead of
/// rescanning the whole activity list.
#[derive(Debug, Default)]
pub(crate) struct DependencyIndex {
    /// Per place: timed activities whose enablement reads it (sorted).
    pub(crate) timed_dependents: Vec<Vec<ActivityId>>,
    /// Per place: instantaneous activities whose enablement reads it
    /// (sorted).
    pub(crate) instant_dependents: Vec<Vec<ActivityId>>,
    /// Timed activities with an undeclared gate read-set: affected by
    /// every marking change (sorted).
    pub(crate) global_timed: Vec<ActivityId>,
    /// Instantaneous activities with an undeclared gate read-set (sorted).
    pub(crate) global_instant: Vec<ActivityId>,
    /// Every instantaneous activity, in index order.
    pub(crate) instantaneous: Vec<ActivityId>,
    /// Per activity, per case: places a firing writes (deduped). Unused
    /// when the activity's writes are unknown.
    pub(crate) touched: Vec<Vec<Vec<PlaceId>>>,
    /// Per activity: whether a firing can write places not captured in
    /// `touched` (an undeclared gate write-set anywhere on the activity).
    pub(crate) writes_unknown: Vec<bool>,
}

impl DependencyIndex {
    fn build(place_count: usize, activities: &[Activity]) -> Self {
        let mut idx = DependencyIndex {
            timed_dependents: vec![Vec::new(); place_count],
            instant_dependents: vec![Vec::new(); place_count],
            touched: Vec::with_capacity(activities.len()),
            writes_unknown: Vec::with_capacity(activities.len()),
            ..DependencyIndex::default()
        };
        for (i, a) in activities.iter().enumerate() {
            let id = ActivityId(i);
            let instant = a.is_instantaneous();
            if instant {
                idx.instantaneous.push(id);
            }

            // Read side: places whose token count can gate enablement.
            let mut reads: Vec<PlaceId> = a.input_arcs.iter().map(|&(p, _)| p).collect();
            let mut reads_unknown = false;
            for g in &a.input_gates {
                match &g.reads {
                    Some(r) => reads.extend_from_slice(r),
                    None => reads_unknown = true,
                }
            }
            if reads_unknown {
                if instant {
                    idx.global_instant.push(id);
                } else {
                    idx.global_timed.push(id);
                }
            }
            reads.sort_unstable();
            reads.dedup();
            for p in reads {
                let deps = if instant {
                    &mut idx.instant_dependents[p.0]
                } else {
                    &mut idx.timed_dependents[p.0]
                };
                deps.push(id);
            }

            // Write side: per-case touched-place lists.
            let mut writes_unknown = false;
            let mut pre: Vec<PlaceId> = a.input_arcs.iter().map(|&(p, _)| p).collect();
            for g in &a.input_gates {
                match &g.writes {
                    Some(w) => pre.extend_from_slice(w),
                    None => writes_unknown = true,
                }
            }
            let mut per_case = Vec::with_capacity(a.cases.len());
            for c in &a.cases {
                let mut t = pre.clone();
                t.extend(c.output_arcs.iter().map(|&(p, _)| p));
                for g in &c.output_gates {
                    match &g.writes {
                        Some(w) => t.extend_from_slice(w),
                        None => writes_unknown = true,
                    }
                }
                t.sort_unstable();
                t.dedup();
                per_case.push(t);
            }
            idx.touched.push(per_case);
            idx.writes_unknown.push(writes_unknown);
        }
        // Dependent lists were filled in ascending activity order, so they
        // are already sorted; dedup is unnecessary because reads were
        // deduped per activity.
        idx
    }
}

/// An immutable, validated stochastic activity network.
///
/// Build with [`SanBuilder`](crate::SanBuilder).
pub struct SanModel {
    pub(crate) place_names: Vec<String>,
    pub(crate) initial: Vec<u32>,
    pub(crate) activities: Vec<Activity>,
    pub(crate) index: DependencyIndex,
}

impl SanModel {
    /// Validates the parts, precomputes the dependency index and the
    /// per-activity case-weight tables, and assembles the model. Called by
    /// [`SanBuilder::build`](crate::SanBuilder::build).
    pub(crate) fn from_parts(
        place_names: Vec<String>,
        initial: Vec<u32>,
        activities: Vec<Activity>,
    ) -> Result<Self, SanError> {
        let mut model = SanModel {
            place_names,
            initial,
            activities,
            index: DependencyIndex::default(),
        };
        model.validate()?;
        for a in &mut model.activities {
            a.case_weights = a.cases.iter().map(|c| c.weight).collect();
        }
        model.index = DependencyIndex::build(model.place_names.len(), &model.activities);
        Ok(model)
    }

    /// Number of places.
    #[must_use]
    pub fn place_count(&self) -> usize {
        self.place_names.len()
    }

    /// Number of activities.
    #[must_use]
    pub fn activity_count(&self) -> usize {
        self.activities.len()
    }

    /// Name of a place.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    #[must_use]
    pub fn place_name(&self, id: PlaceId) -> &str {
        &self.place_names[id.0]
    }

    /// Looks up a place id by name.
    #[must_use]
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.place_names.iter().position(|n| n == name).map(PlaceId)
    }

    /// Name of an activity.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    #[must_use]
    pub fn activity_name(&self, id: ActivityId) -> &str {
        &self.activities[id.0].name
    }

    /// Looks up an activity id by name.
    #[must_use]
    pub fn activity_by_name(&self, name: &str) -> Option<ActivityId> {
        self.activities
            .iter()
            .position(|a| a.name == name)
            .map(ActivityId)
    }

    /// The activity with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    #[must_use]
    pub fn activity(&self, id: ActivityId) -> &Activity {
        &self.activities[id.0]
    }

    /// The initial marking.
    #[must_use]
    pub fn initial_marking(&self) -> Marking {
        Marking::new(self.initial.clone())
    }

    /// Overwrites `into` with the initial marking, reusing its buffer —
    /// the allocation-free reset used when simulation state is recycled
    /// across replications ([`SimState::reset`](crate::SimState::reset)).
    pub fn copy_initial_marking(&self, into: &mut Marking) {
        into.tokens.clear();
        into.tokens.extend_from_slice(&self.initial);
    }

    /// All activity ids, in index order.
    pub fn activity_ids(&self) -> impl Iterator<Item = ActivityId> {
        (0..self.activities.len()).map(ActivityId)
    }

    /// All place ids, in index order.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.place_names.len()).map(PlaceId)
    }

    /// Whether `activity` is enabled in `marking`: all input arcs are
    /// covered and every input-gate predicate holds.
    #[must_use]
    pub fn is_enabled(&self, activity: ActivityId, marking: &Marking) -> bool {
        let a = &self.activities[activity.0];
        a.input_arcs.iter().all(|&(p, n)| marking.tokens(p) >= n)
            && a.input_gates.iter().all(|g| (g.predicate)(marking))
    }

    /// Timed activities whose enablement can depend on `place` (from input
    /// arcs and declared gate read-sets), in activity-index order.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    #[must_use]
    pub fn timed_dependents_of(&self, place: PlaceId) -> &[ActivityId] {
        &self.index.timed_dependents[place.0]
    }

    /// Instantaneous activities whose enablement can depend on `place`,
    /// in activity-index order.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    #[must_use]
    pub fn instant_dependents_of(&self, place: PlaceId) -> &[ActivityId] {
        &self.index.instant_dependents[place.0]
    }

    /// Activities with an undeclared gate read-set, which the simulator
    /// must re-check after every firing (timed and instantaneous merged,
    /// in activity-index order).
    #[must_use]
    pub fn conservative_read_activities(&self) -> Vec<ActivityId> {
        let mut all: Vec<ActivityId> = self
            .index
            .global_timed
            .iter()
            .chain(&self.index.global_instant)
            .copied()
            .collect();
        all.sort_unstable();
        all
    }

    /// Whether firing `activity` can write places the dependency index
    /// cannot enumerate (an undeclared gate write-set), forcing a full
    /// enablement rescan.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    #[must_use]
    pub fn firing_writes_unknown(&self, activity: ActivityId) -> bool {
        self.index.writes_unknown[activity.0]
    }

    /// Validates internal consistency; called by the builder.
    pub(crate) fn validate(&self) -> Result<(), SanError> {
        if self.activities.is_empty() {
            return Err(SanError::EmptyModel);
        }
        let np = self.place_names.len();
        let check = |places: Option<&Vec<PlaceId>>| -> Result<(), SanError> {
            for &p in places.into_iter().flatten() {
                if p.0 >= np {
                    return Err(SanError::UnknownPlace { index: p.0 });
                }
            }
            Ok(())
        };
        for a in &self.activities {
            for &(p, _) in a.input_arcs.iter() {
                if p.0 >= np {
                    return Err(SanError::UnknownPlace { index: p.0 });
                }
            }
            for g in &a.input_gates {
                check(g.reads.as_ref())?;
                check(g.writes.as_ref())?;
            }
            if a.cases.is_empty() {
                return Err(SanError::NoCases {
                    activity: a.name.clone(),
                });
            }
            let mut total = 0.0;
            for c in &a.cases {
                if c.weight < 0.0 || !c.weight.is_finite() {
                    return Err(SanError::BadCaseWeights {
                        activity: a.name.clone(),
                    });
                }
                total += c.weight;
                for &(p, _) in c.output_arcs.iter() {
                    if p.0 >= np {
                        return Err(SanError::UnknownPlace { index: p.0 });
                    }
                }
                for g in &c.output_gates {
                    check(g.writes.as_ref())?;
                }
            }
            if total <= 0.0 {
                return Err(SanError::BadCaseWeights {
                    activity: a.name.clone(),
                });
            }
            a.timing.validate()?;
        }
        Ok(())
    }
}

impl fmt::Debug for SanModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SanModel")
            .field("places", &self.place_names)
            .field("activities", &self.activities.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::FiringDistribution;
    use crate::builder::SanBuilder;

    #[test]
    fn marking_token_operations() {
        let mut m = Marking::new(vec![2, 0, 5]);
        let p0 = PlaceId(0);
        let p1 = PlaceId(1);
        assert_eq!(m.tokens(p0), 2);
        m.add_tokens(p1, 3);
        assert_eq!(m.tokens(p1), 3);
        m.remove_tokens(p0, 2);
        assert_eq!(m.tokens(p0), 0);
        assert_eq!(m.total(), 8);
        assert_eq!(m.len(), 3);
        m.set_tokens(p0, 7);
        assert_eq!(m.tokens(p0), 7);
    }

    #[test]
    fn marking_display() {
        let m = Marking::new(vec![1, 2, 3]);
        assert_eq!(m.to_string(), "[1 2 3]");
    }

    #[test]
    fn lookups_by_name() {
        let mut b = SanBuilder::new();
        let p = b.place("src", 1);
        let q = b.place("dst", 0);
        b.timed_activity("move", FiringDistribution::Deterministic { delay: 1.0 })
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build();
        let m = b.build().unwrap();
        assert_eq!(m.place_by_name("src"), Some(p));
        assert_eq!(m.place_by_name("nope"), None);
        assert_eq!(m.place_name(q), "dst");
        let a = m.activity_by_name("move").unwrap();
        assert_eq!(m.activity_name(a), "move");
        assert!(m.activity_by_name("jump").is_none());
        assert_eq!(m.place_count(), 2);
        assert_eq!(m.activity_count(), 1);
    }

    #[test]
    fn enablement_respects_arcs() {
        let mut b = SanBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.timed_activity("t", FiringDistribution::Deterministic { delay: 1.0 })
            .input_arc(p, 2) // needs 2 tokens, only 1 available
            .output_arc(q, 1)
            .build();
        let m = b.build().unwrap();
        let a = m.activity_by_name("t").unwrap();
        assert!(!m.is_enabled(a, &m.initial_marking()));
        let mut marking = m.initial_marking();
        marking.add_tokens(p, 1);
        assert!(m.is_enabled(a, &marking));
    }

    #[test]
    fn enablement_respects_gates() {
        let mut b = SanBuilder::new();
        let p = b.place("p", 5);
        let q = b.place("q", 0);
        b.timed_activity("t", FiringDistribution::Deterministic { delay: 1.0 })
            .input_gate(
                move |m| m.tokens(p) >= 3 && m.tokens(q) == 0,
                move |m| m.remove_tokens(p, 3),
            )
            .output_arc(q, 1)
            .build();
        let m = b.build().unwrap();
        let a = m.activity_by_name("t").unwrap();
        assert!(m.is_enabled(a, &m.initial_marking()));
        let mut blocked = m.initial_marking();
        blocked.set_tokens(q, 1);
        assert!(!m.is_enabled(a, &blocked));
    }

    #[test]
    fn empty_model_rejected() {
        let b = SanBuilder::new();
        assert!(matches!(b.build(), Err(SanError::EmptyModel)));
    }
}
