//! Transient solution of SAN reward variables: Monte-Carlo replication
//! ([`TransientSolver`]) and the exact CTMC backend
//! ([`Method::Analytic`], via [`AnalyticSolver`](crate::AnalyticSolver)),
//! behind one [`solve`] entry point with one result shape.

use crate::error::SanError;
use crate::model::{ActivityId, Marking, SanModel};
use crate::reward::{FirstPassage, ImpulseReward, Observer, RateReward};
use crate::sim::{Engine, SimState, Simulator};
use diversify_des::exec::{BudgetOutcome, FailureCause, ReplicationFailure, RunPolicy};
use diversify_des::faults::panic_message;
use diversify_des::{derive_seed, SimTime, StreamId, Welford};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// A reward variable to estimate across replications.
#[derive(Clone)]
pub enum RewardSpec {
    /// Time-averaged marking function (e.g. compromised ratio).
    Rate {
        /// Metric name in the result.
        name: String,
        /// The marking function.
        f: Arc<dyn Fn(&Marking) -> f64 + Send + Sync>,
    },
    /// First time a predicate holds (e.g. time-to-attack). Replications
    /// where the predicate never holds contribute to the miss count rather
    /// than the time statistics.
    FirstPassage {
        /// Metric name in the result.
        name: String,
        /// The target predicate.
        pred: Arc<dyn Fn(&Marking) -> bool + Send + Sync>,
    },
    /// Firing count of an activity.
    Impulse {
        /// Metric name in the result.
        name: String,
        /// The observed activity.
        activity: ActivityId,
    },
}

impl std::fmt::Debug for RewardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewardSpec::Rate { name, .. } => write!(f, "Rate({name})"),
            RewardSpec::FirstPassage { name, .. } => write!(f, "FirstPassage({name})"),
            RewardSpec::Impulse { name, .. } => write!(f, "Impulse({name})"),
        }
    }
}

impl RewardSpec {
    /// Convenience constructor for a rate reward.
    pub fn rate<F>(name: impl Into<String>, f: F) -> Self
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        RewardSpec::Rate {
            name: name.into(),
            f: Arc::new(f),
        }
    }

    /// Convenience constructor for a first-passage reward.
    pub fn first_passage<P>(name: impl Into<String>, pred: P) -> Self
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        RewardSpec::FirstPassage {
            name: name.into(),
            pred: Arc::new(pred),
        }
    }

    /// Convenience constructor for an impulse reward.
    pub fn impulse(name: impl Into<String>, activity: ActivityId) -> Self {
        RewardSpec::Impulse {
            name: name.into(),
            activity,
        }
    }

    /// The metric name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            RewardSpec::Rate { name, .. }
            | RewardSpec::FirstPassage { name, .. }
            | RewardSpec::Impulse { name, .. } => name,
        }
    }
}

/// Estimates for one reward variable across replications.
#[derive(Debug, Clone)]
pub struct RewardEstimate {
    /// Metric name.
    pub name: String,
    /// Statistics over replications that produced a value (for
    /// first-passage rewards: only replications where the event occurred).
    /// The analytic backend stores its exact value as a single
    /// observation.
    pub stats: Welford,
    /// For first-passage rewards: how many replications reached the
    /// target. Equal to the replication count for other reward kinds.
    pub occurrences: u32,
    /// Set by the analytic backend: the exact occurrence probability
    /// (the hit probability for first-passage rewards, 1 otherwise).
    /// `None` on Monte-Carlo estimates.
    pub exact_probability: Option<f64>,
}

impl RewardEstimate {
    /// Occurrence probability: the exact value when the analytic backend
    /// produced this estimate, otherwise occurrences / replications.
    #[must_use]
    pub fn probability(&self, replications: u32) -> f64 {
        match self.exact_probability {
            Some(p) => p,
            None => f64::from(self.occurrences) / f64::from(replications),
        }
    }
}

/// Result of a transient solution.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Per-reward estimates, in spec order.
    pub estimates: Vec<RewardEstimate>,
    /// Number of replications performed.
    pub replications: u32,
    /// Horizon used for each replication.
    pub horizon: SimTime,
}

impl TransientResult {
    /// Looks up an estimate by name.
    #[must_use]
    pub fn estimate(&self, name: &str) -> Option<&RewardEstimate> {
        self.estimates.iter().find(|e| e.name == name)
    }
}

/// How to solve a transient reward problem: by Monte-Carlo replication
/// or by the exact CTMC backend.
#[derive(Debug, Clone, Copy)]
pub enum Method {
    /// Replicated simulation ([`TransientSolver`]): works for every
    /// firing distribution; estimates carry sampling error.
    MonteCarlo {
        /// Horizon of each replication.
        horizon: SimTime,
        /// Number of replications (must be positive).
        replications: u32,
        /// Master seed.
        seed: u64,
    },
    /// Exact solution ([`AnalyticSolver`](crate::AnalyticSolver)):
    /// requires every timed activity to be exponential and a reachable
    /// state space within `max_states`; values are exact to `tol`.
    Analytic {
        /// Transient horizon.
        horizon: SimTime,
        /// Uniformization truncation tolerance (e.g. `1e-10`).
        tol: f64,
        /// Tangible-state cap — larger models fail with
        /// [`SanError::StateSpaceCap`] and should route to Monte-Carlo.
        max_states: usize,
    },
}

/// Solves the rewards with the chosen [`Method`], returning the same
/// [`TransientResult`] shape either way.
///
/// # Errors
///
/// The Monte-Carlo path is infallible; the analytic path reports
/// non-exponential timing, state-space blow-up, or vanishing loops as a
/// [`SanError`].
pub fn solve(
    model: &SanModel,
    rewards: &[RewardSpec],
    method: Method,
) -> Result<TransientResult, SanError> {
    match method {
        Method::MonteCarlo {
            horizon,
            replications,
            seed,
        } => Ok(TransientSolver::new(horizon, replications, seed).solve(model, rewards)),
        Method::Analytic {
            horizon,
            tol,
            max_states,
        } => crate::analytic::AnalyticSolver::new(horizon, tol)
            .with_max_states(max_states)
            .solve(model, rewards),
    }
}

/// Replicated Monte-Carlo transient solver.
///
/// # Examples
///
/// ```
/// use diversify_san::{SanBuilder, FiringDistribution, TransientSolver, RewardSpec};
/// use diversify_des::SimTime;
///
/// let mut b = SanBuilder::new();
/// let up = b.place("up", 1);
/// let down = b.place("down", 0);
/// b.timed_activity("fail", FiringDistribution::Exponential { rate: 1.0 })
///     .input_arc(up, 1)
///     .output_arc(down, 1)
///     .build();
/// let model = b.build().unwrap();
///
/// let solver = TransientSolver::new(SimTime::from_secs(100.0), 2000, 42);
/// let result = solver.solve(
///     &model,
///     &[RewardSpec::first_passage("ttf", move |m| m.tokens(down) == 1)],
/// );
/// let ttf = result.estimate("ttf").unwrap();
/// // Mean time to failure of an Exp(1) component is 1.
/// assert!((ttf.stats.mean() - 1.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TransientSolver {
    horizon: SimTime,
    replications: u32,
    master_seed: u64,
}

impl TransientSolver {
    /// Creates a solver with the given horizon, replication count and
    /// master seed.
    ///
    /// # Panics
    ///
    /// Panics if `replications` is zero.
    #[must_use]
    pub fn new(horizon: SimTime, replications: u32, master_seed: u64) -> Self {
        assert!(replications > 0, "at least one replication required");
        TransientSolver {
            horizon,
            replications,
            master_seed,
        }
    }

    /// The replication count.
    #[must_use]
    pub fn replications(&self) -> u32 {
        self.replications
    }

    /// Runs all replications and aggregates the reward estimates.
    ///
    /// The replication loop is workspace-reusing: one [`SimState`] and
    /// one set of reward observers are built up front and recycled
    /// through every replication ([`Simulator::with_state`] +
    /// `Observer::reset`), so the steady state performs no allocation —
    /// only the RNG seeds change from replication to replication, and
    /// trajectories stay bit-identical to fresh-`Simulator` runs.
    #[must_use]
    pub fn solve(&self, model: &SanModel, rewards: &[RewardSpec]) -> TransientResult {
        let mut acc: Vec<(Welford, u32)> = rewards.iter().map(|_| (Welford::new(), 0)).collect();
        let mut tracker = RewardTracker::new(rewards);
        let mut values: Vec<Option<f64>> = vec![None; rewards.len()];
        let mut state = SimState::new(model);
        for rep in 0..self.replications {
            let seed = derive_seed(self.master_seed, StreamId(0x7A_0000 + u64::from(rep)));
            tracker.reset();
            let mut sim = Simulator::with_state(model, seed, Engine::default(), state);
            sim.run_until_observed(self.horizon, &mut tracker);
            state = sim.into_state();
            tracker.collect_into(&mut values);
            for (slot, value) in acc.iter_mut().zip(&values) {
                if let Some(v) = value {
                    slot.0.push(*v);
                    slot.1 += 1;
                }
            }
        }
        TransientResult {
            estimates: rewards
                .iter()
                .zip(acc)
                .map(|(spec, (stats, occurrences))| RewardEstimate {
                    name: spec.name().to_string(),
                    stats,
                    occurrences,
                    exact_probability: None,
                })
                .collect(),
            replications: self.replications,
            horizon: self.horizon,
        }
    }
}

/// What a budgeted ([`TransientSolver::solve_budgeted`]) transient run
/// produced: the estimates over every completed replication plus the
/// fault and budget record. Survivor replications fold in plan order,
/// so a fault-free unbudgeted run is bit-identical to
/// [`TransientSolver::solve`].
#[derive(Debug, Clone)]
pub struct PartialTransient {
    /// Estimates over the completed replications —
    /// `None` when every replication failed or the budget expired
    /// before the first one. `result.replications` counts *completed*
    /// replications, so [`RewardEstimate::probability`] stays honest on
    /// degraded runs.
    pub result: Option<TransientResult>,
    /// Replications started (completed + failed; excludes
    /// budget-truncated ones never begun).
    pub attempted: u32,
    /// Replications that completed and folded into the estimates.
    pub completed: u32,
    /// Replications that failed every attempt, with seeds and causes.
    pub failed: Vec<ReplicationFailure>,
    /// How the run ended.
    pub budget_outcome: BudgetOutcome,
}

impl PartialTransient {
    /// Whether replications were lost to failures or truncation.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.failed.is_empty() || self.budget_outcome.is_truncation()
    }
}

impl TransientSolver {
    /// The fault-tolerant form of [`TransientSolver::solve`]: each
    /// replication runs under `catch_unwind`, panics and non-finite
    /// reward values are isolated (and retried per the policy's
    /// [`RetryPolicy`](diversify_des::exec::RetryPolicy), each attempt
    /// re-deriving its seed so retries are deterministic), and the
    /// policy's [`Budget`](diversify_des::exec::Budget) — replication
    /// cap, wall-clock deadline, cancel token — is checked before every
    /// replication, truncating the run to a deterministic prefix.
    ///
    /// Every surviving replication uses exactly the seed the strict
    /// path would (`derive_seed(master, 0x7A_0000 + rep)`), and a
    /// simulation state poisoned by a panic is dropped and rebuilt, so
    /// survivors are bit-identical to a fault-free run and a truncated
    /// run is bit-identical to a solver constructed with the truncated
    /// replication count.
    #[must_use]
    pub fn solve_budgeted(
        &self,
        model: &SanModel,
        rewards: &[RewardSpec],
        policy: &RunPolicy,
    ) -> PartialTransient {
        let started = Instant::now();
        let mut acc: Vec<(Welford, u32)> = rewards.iter().map(|_| (Welford::new(), 0)).collect();
        let mut tracker = RewardTracker::new(rewards);
        let mut values: Vec<Option<f64>> = vec![None; rewards.len()];
        // The reusable simulation state rides in an Option: a panicking
        // replication consumes it mid-unwind, and the next attempt
        // rebuilds from scratch instead of recycling poisoned state.
        let mut state: Option<SimState> = Some(SimState::new(model));
        let mut completed = 0u32;
        let mut attempted = 0u32;
        let mut failed: Vec<ReplicationFailure> = Vec::new();
        let mut budget_outcome = BudgetOutcome::Completed;
        for rep in 0..self.replications {
            if let Some(stop) = policy.budget.stop_reason(started, rep + 1) {
                budget_outcome = stop;
                break;
            }
            attempted += 1;
            let base_seed = derive_seed(self.master_seed, StreamId(0x7A_0000 + u64::from(rep)));
            let mut last_cause: Option<FailureCause> = None;
            for attempt in 0..policy.retry.max_attempts() {
                let seed = policy.retry.seed_for_attempt(base_seed, attempt);
                let st = state.take().unwrap_or_else(|| SimState::new(model));
                tracker.reset();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut sim = Simulator::with_state(model, seed, Engine::default(), st);
                    sim.run_until_observed(self.horizon, &mut tracker);
                    sim.into_state()
                }));
                match outcome {
                    Ok(fresh) => {
                        state = Some(fresh);
                        tracker.collect_into(&mut values);
                        if values.iter().flatten().all(|v| v.is_finite()) {
                            for (slot, value) in acc.iter_mut().zip(&values) {
                                if let Some(v) = value {
                                    slot.0.push(*v);
                                    slot.1 += 1;
                                }
                            }
                            completed += 1;
                            last_cause = None;
                            break;
                        }
                        last_cause = Some(FailureCause::InvalidOutput);
                    }
                    Err(payload) => {
                        last_cause = Some(FailureCause::Panicked(panic_message(payload.as_ref())));
                    }
                }
            }
            if let Some(cause) = last_cause {
                failed.push(ReplicationFailure {
                    index: rep,
                    seed: base_seed,
                    attempts: policy.retry.max_attempts(),
                    cause,
                });
            }
        }
        let result = (completed > 0).then(|| TransientResult {
            estimates: rewards
                .iter()
                .zip(acc)
                .map(|(spec, (stats, occurrences))| RewardEstimate {
                    name: spec.name().to_string(),
                    stats,
                    occurrences,
                    exact_probability: None,
                })
                .collect(),
            replications: completed,
            horizon: self.horizon,
        });
        PartialTransient {
            result,
            attempted,
            completed,
            failed,
            budget_outcome,
        }
    }
}

/// The solver's reusable observer set: one observer per reward spec,
/// built once per `solve` call and reset between replications, fanning
/// trajectory callbacks out to all of them without any per-replication
/// allocation.
struct RewardTracker {
    rates: Vec<(usize, RateReward)>,
    passages: Vec<(usize, FirstPassage)>,
    impulses: Vec<(usize, ImpulseReward)>,
}

impl RewardTracker {
    fn new(rewards: &[RewardSpec]) -> Self {
        let mut rates: Vec<(usize, RateReward)> = Vec::new();
        let mut passages: Vec<(usize, FirstPassage)> = Vec::new();
        let mut impulses: Vec<(usize, ImpulseReward)> = Vec::new();
        for (i, spec) in rewards.iter().enumerate() {
            match spec {
                RewardSpec::Rate { f, .. } => {
                    let f = Arc::clone(f);
                    rates.push((i, RateReward::new(move |m| f(m))));
                }
                RewardSpec::FirstPassage { pred, .. } => {
                    let p = Arc::clone(pred);
                    passages.push((i, FirstPassage::new(move |m| p(m))));
                }
                RewardSpec::Impulse { activity, .. } => {
                    impulses.push((i, ImpulseReward::new(*activity, 1.0)));
                }
            }
        }
        RewardTracker {
            rates,
            passages,
            impulses,
        }
    }

    /// Prepares every observer for a fresh trajectory.
    fn reset(&mut self) {
        for (_, r) in &mut self.rates {
            r.reset();
        }
        for (_, p) in &mut self.passages {
            p.reset();
        }
        for (_, im) in &mut self.impulses {
            im.reset();
        }
    }

    /// Writes per-reward values into `out` (`None` for an unreached
    /// first passage), indexed by reward-spec position.
    fn collect_into(&self, out: &mut [Option<f64>]) {
        for (i, r) in &self.rates {
            out[*i] = r.mean();
        }
        for (i, p) in &self.passages {
            out[*i] = p.time().map(SimTime::as_secs);
        }
        for (i, im) in &self.impulses {
            out[*i] = Some(im.count() as f64);
        }
    }
}

impl Observer for RewardTracker {
    fn on_marking(&mut self, now: SimTime, marking: &Marking) {
        for (_, r) in &mut self.rates {
            r.on_marking(now, marking);
        }
        for (_, p) in &mut self.passages {
            p.on_marking(now, marking);
        }
    }

    fn on_fire(&mut self, now: SimTime, activity: ActivityId, case: usize, marking: &Marking) {
        for (_, im) in &mut self.impulses {
            im.on_fire(now, activity, case, marking);
        }
    }

    fn on_end(&mut self, now: SimTime, marking: &Marking) {
        for (_, r) in &mut self.rates {
            r.on_end(now, marking);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::FiringDistribution;
    use crate::builder::SanBuilder;

    /// Exp(λ) single-failure model.
    fn failure_model(rate: f64) -> SanModel {
        let mut b = SanBuilder::new();
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        b.timed_activity("fail", FiringDistribution::Exponential { rate })
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build();
        b.build().unwrap()
    }

    #[test]
    fn first_passage_mean_matches_exponential() {
        let model = failure_model(2.0);
        let down = model.place_by_name("down").unwrap();
        let solver = TransientSolver::new(SimTime::from_secs(1000.0), 4000, 9);
        let r = solver.solve(
            &model,
            &[RewardSpec::first_passage("ttf", move |m| {
                m.tokens(down) == 1
            })],
        );
        let e = r.estimate("ttf").unwrap();
        assert!(
            (e.stats.mean() - 0.5).abs() < 0.03,
            "mean {}",
            e.stats.mean()
        );
        assert_eq!(e.occurrences, 4000);
        assert!((e.probability(r.replications) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_horizon_gives_partial_occurrence() {
        // P(Exp(1) <= 1) = 1 - e^-1 ≈ 0.632.
        let model = failure_model(1.0);
        let down = model.place_by_name("down").unwrap();
        let solver = TransientSolver::new(SimTime::from_secs(1.0), 5000, 3);
        let r = solver.solve(
            &model,
            &[RewardSpec::first_passage("hit", move |m| {
                m.tokens(down) == 1
            })],
        );
        let p = r.estimate("hit").unwrap().probability(r.replications);
        assert!((p - 0.632).abs() < 0.03, "p {p}");
    }

    #[test]
    fn rate_reward_availability() {
        // Availability of an Exp(1) failure over [0, 1]:
        // E[time-average of up] = (1/t)∫ P(up at s) ds = (1 - e^-1)/1 ≈ 0.632.
        let model = failure_model(1.0);
        let up = model.place_by_name("up").unwrap();
        let solver = TransientSolver::new(SimTime::from_secs(1.0), 5000, 17);
        let r = solver.solve(
            &model,
            &[RewardSpec::rate("avail", move |m| f64::from(m.tokens(up)))],
        );
        let mean = r.estimate("avail").unwrap().stats.mean();
        assert!((mean - 0.632).abs() < 0.03, "avail {mean}");
    }

    #[test]
    fn impulse_counts_firings() {
        let model = failure_model(1.0);
        let fail = model.activity_by_name("fail").unwrap();
        let solver = TransientSolver::new(SimTime::from_secs(1000.0), 500, 5);
        let r = solver.solve(&model, &[RewardSpec::impulse("fires", fail)]);
        let e = r.estimate("fires").unwrap();
        assert_eq!(e.stats.mean(), 1.0); // exactly one firing per replication
    }

    #[test]
    fn results_deterministic_per_seed() {
        let model = failure_model(1.0);
        let down = model.place_by_name("down").unwrap();
        let run = |seed| {
            TransientSolver::new(SimTime::from_secs(10.0), 200, seed)
                .solve(
                    &model,
                    &[RewardSpec::first_passage("t", move |m| m.tokens(down) == 1)],
                )
                .estimate("t")
                .unwrap()
                .stats
                .mean()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn multiple_rewards_in_one_pass() {
        let model = failure_model(1.0);
        let up = model.place_by_name("up").unwrap();
        let down = model.place_by_name("down").unwrap();
        let fail = model.activity_by_name("fail").unwrap();
        let solver = TransientSolver::new(SimTime::from_secs(2.0), 300, 11);
        let r = solver.solve(
            &model,
            &[
                RewardSpec::rate("avail", move |m| f64::from(m.tokens(up))),
                RewardSpec::first_passage("ttf", move |m| m.tokens(down) == 1),
                RewardSpec::impulse("fires", fail),
            ],
        );
        assert_eq!(r.estimates.len(), 3);
        assert!(r.estimate("avail").is_some());
        assert!(r.estimate("ttf").is_some());
        assert!(r.estimate("fires").is_some());
        assert!(r.estimate("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_panics() {
        let _ = TransientSolver::new(SimTime::from_secs(1.0), 0, 0);
    }

    #[test]
    fn budgeted_solve_matches_strict_solve_when_unconstrained() {
        let model = failure_model(1.0);
        let down = model.place_by_name("down").unwrap();
        let rewards = [RewardSpec::first_passage("t", move |m| m.tokens(down) == 1)];
        let solver = TransientSolver::new(SimTime::from_secs(10.0), 200, 7);
        let strict = solver.solve(&model, &rewards);
        let part = solver.solve_budgeted(&model, &rewards, &RunPolicy::new());
        assert!(!part.is_degraded());
        assert_eq!(part.budget_outcome, BudgetOutcome::Completed);
        assert_eq!(part.completed, 200);
        let r = part.result.expect("all replications completed");
        let (a, b) = (strict.estimate("t").unwrap(), r.estimate("t").unwrap());
        assert_eq!(a.stats.mean(), b.stats.mean());
        assert_eq!(a.occurrences, b.occurrences);
    }

    #[test]
    fn budget_truncates_to_a_smaller_solver_bit_identically() {
        use diversify_des::exec::Budget;
        let model = failure_model(1.0);
        let down = model.place_by_name("down").unwrap();
        let rewards = [RewardSpec::first_passage("t", move |m| m.tokens(down) == 1)];
        let capped = TransientSolver::new(SimTime::from_secs(10.0), 200, 7).solve_budgeted(
            &model,
            &rewards,
            &RunPolicy::new().with_budget(Budget::unlimited().with_max_replications(50)),
        );
        assert_eq!(capped.budget_outcome, BudgetOutcome::ReplicationBudget);
        assert_eq!(capped.completed, 50);
        assert!(capped.is_degraded());
        // The truncated prefix IS the 50-replication solver's run.
        let small = TransientSolver::new(SimTime::from_secs(10.0), 50, 7).solve(&model, &rewards);
        let r = capped.result.expect("prefix completed");
        assert_eq!(r.replications, 50);
        assert_eq!(
            r.estimate("t").unwrap().stats.mean(),
            small.estimate("t").unwrap().stats.mean()
        );
        assert_eq!(
            r.estimate("t").unwrap().occurrences,
            small.estimate("t").unwrap().occurrences
        );
    }

    #[test]
    fn cancellation_stops_the_solver_between_replications() {
        use diversify_des::exec::{Budget, CancelToken};
        let model = failure_model(1.0);
        let token = CancelToken::new();
        token.cancel();
        let part = TransientSolver::new(SimTime::from_secs(10.0), 100, 7).solve_budgeted(
            &model,
            &[RewardSpec::rate("x", |_| 1.0)],
            &RunPolicy::new().with_budget(Budget::unlimited().with_cancel(&token)),
        );
        assert_eq!(part.budget_outcome, BudgetOutcome::Cancelled);
        assert_eq!(part.completed, 0);
        assert!(part.result.is_none());
    }

    #[test]
    fn panicking_reward_is_isolated_and_survivors_match() {
        let model = failure_model(1.0);
        let down = model.place_by_name("down").unwrap();
        // A reward whose marking function panics on one specific
        // replication cannot be seeded directly, so panic on first
        // evaluation via an external counter armed for replication 0.
        use std::sync::atomic::{AtomicBool, Ordering};
        let armed = Arc::new(AtomicBool::new(true));
        let trap = Arc::clone(&armed);
        diversify_des::faults::silence_injected_panics();
        let rewards = [
            RewardSpec::rate("boom", move |_| {
                if trap.swap(false, Ordering::Relaxed) {
                    std::panic::panic_any(diversify_des::faults::InjectedPanic { index: 0 });
                }
                1.0
            }),
            RewardSpec::first_passage("t", move |m| m.tokens(down) == 1),
        ];
        let part = TransientSolver::new(SimTime::from_secs(10.0), 20, 7).solve_budgeted(
            &model,
            &rewards,
            &RunPolicy::new(),
        );
        // Replication 0 panicked on its first marking callback; all
        // later replications completed untouched.
        assert_eq!(part.failed.len(), 1);
        assert_eq!(part.failed[0].index, 0);
        assert!(matches!(part.failed[0].cause, FailureCause::Panicked(_)));
        assert_eq!(part.completed, 19);
        assert!(part.is_degraded());
        assert!(part.result.is_some());
    }

    #[test]
    fn retry_recovers_a_transient_fault_and_matches_the_strict_run() {
        use diversify_des::exec::RetryPolicy;
        let model = failure_model(1.0);
        let down = model.place_by_name("down").unwrap();
        use std::sync::atomic::{AtomicU32, Ordering};
        let remaining = Arc::new(AtomicU32::new(1));
        let trap = Arc::clone(&remaining);
        diversify_des::faults::silence_injected_panics();
        let faulty = [RewardSpec::rate("avail", move |m| {
            if trap
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
            {
                std::panic::panic_any(diversify_des::faults::InjectedPanic { index: 0 });
            }
            f64::from(m.tokens(down))
        })];
        let part = TransientSolver::new(SimTime::from_secs(5.0), 30, 11).solve_budgeted(
            &model,
            &faulty,
            &RunPolicy::new().with_retry(RetryPolicy::retries(2)),
        );
        // The single transient fault was retried from the same seed, so
        // the run is whole and bit-identical to an unfaulted solve.
        assert!(part.failed.is_empty());
        assert_eq!(part.completed, 30);
        let clean = [RewardSpec::rate("avail", move |m| {
            f64::from(m.tokens(down))
        })];
        let strict = TransientSolver::new(SimTime::from_secs(5.0), 30, 11).solve(&model, &clean);
        assert_eq!(
            part.result.unwrap().estimate("avail").unwrap().stats.mean(),
            strict.estimate("avail").unwrap().stats.mean()
        );
    }

    #[test]
    fn non_finite_reward_is_recorded_as_invalid_output() {
        let model = failure_model(1.0);
        let rewards = [RewardSpec::rate("bad", |_| f64::NAN)];
        let part = TransientSolver::new(SimTime::from_secs(1.0), 5, 3).solve_budgeted(
            &model,
            &rewards,
            &RunPolicy::new(),
        );
        assert_eq!(part.completed, 0);
        assert_eq!(part.failed.len(), 5);
        assert!(part
            .failed
            .iter()
            .all(|f| f.cause == FailureCause::InvalidOutput));
        assert!(part.result.is_none());
        // The run itself still "completed": every replication was
        // attempted, none was truncated by the budget.
        assert_eq!(part.budget_outcome, BudgetOutcome::Completed);
        assert!(part.is_degraded());
    }
}
