//! Reward variables: observers that measure a SAN trajectory.
//!
//! The paper's security indicators map directly onto SAN reward variables:
//!
//! * **Time-To-Attack / Time-To-Security-Failure** — [`FirstPassage`]
//!   rewards (time until a marking predicate first holds);
//! * **compromised ratio** — a [`RateReward`] (time-weighted marking
//!   function);
//! * attack-step counts — [`ImpulseReward`]s on activity firings.

use crate::model::{ActivityId, Marking};
use diversify_des::{SimTime, TimeWeighted};

/// Receives trajectory callbacks from the simulator.
///
/// All methods have empty default bodies so implementors override only
/// what they need.
pub trait Observer {
    /// Called whenever the marking may have changed (including once at
    /// simulation start), with the current time.
    fn on_marking(&mut self, _now: SimTime, _marking: &Marking) {}
    /// Called after each activity firing with the chosen case index and
    /// the post-firing marking.
    fn on_fire(&mut self, _now: SimTime, _activity: ActivityId, _case: usize, _marking: &Marking) {}
    /// Called once when the run ends (horizon, quiescence or error).
    fn on_end(&mut self, _now: SimTime, _marking: &Marking) {}
}

/// An observer that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Time-averaged rate reward: integrates `f(marking)` over time.
///
/// # Examples
///
/// Measuring the mean number of compromised nodes:
///
/// ```no_run
/// # use diversify_san::{RateReward, Marking, PlaceId};
/// # let compromised_place: PlaceId = unimplemented!();
/// let reward = RateReward::new(move |m: &Marking| m.tokens(compromised_place) as f64);
/// ```
pub struct RateReward {
    f: Box<dyn Fn(&Marking) -> f64 + Send + Sync>,
    acc: Option<TimeWeighted>,
    final_mean: Option<f64>,
    last_value: f64,
}

impl std::fmt::Debug for RateReward {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RateReward")
            .field("final_mean", &self.final_mean)
            .finish()
    }
}

impl RateReward {
    /// Creates a rate reward for the marking function `f`.
    #[must_use]
    pub fn new<F>(f: F) -> Self
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        RateReward {
            f: Box::new(f),
            acc: None,
            final_mean: None,
            last_value: 0.0,
        }
    }

    /// The time-weighted mean after the run ended, if the run produced any
    /// observation window.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        self.final_mean
    }

    /// The most recent instantaneous value of the reward function.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Clears all accumulated state so the observer can watch a fresh
    /// trajectory — the reuse hook for replication loops that keep their
    /// observers alive instead of reallocating them per replication.
    pub fn reset(&mut self) {
        self.acc = None;
        self.final_mean = None;
        self.last_value = 0.0;
    }
}

impl Observer for RateReward {
    fn on_marking(&mut self, now: SimTime, marking: &Marking) {
        let v = (self.f)(marking);
        self.last_value = v;
        match &mut self.acc {
            None => self.acc = Some(TimeWeighted::new(now, v)),
            Some(acc) => acc.record(now, v),
        }
    }

    fn on_end(&mut self, now: SimTime, marking: &Marking) {
        let v = (self.f)(marking);
        self.last_value = v;
        match &mut self.acc {
            None => self.final_mean = Some(v),
            Some(acc) => {
                acc.record(now, v);
                self.final_mean = Some(acc.mean_until(now));
            }
        }
    }
}

/// Impulse reward: accumulates a value each time a specific activity fires.
#[derive(Debug)]
pub struct ImpulseReward {
    target: ActivityId,
    per_firing: f64,
    total: f64,
    count: u64,
}

impl ImpulseReward {
    /// Counts firings of `target`, adding `per_firing` to the total each
    /// time.
    #[must_use]
    pub fn new(target: ActivityId, per_firing: f64) -> Self {
        ImpulseReward {
            target,
            per_firing,
            total: 0.0,
            count: 0,
        }
    }

    /// Accumulated reward.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of firings of the target activity.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Clears the accumulated total and count for a fresh trajectory.
    pub fn reset(&mut self) {
        self.total = 0.0;
        self.count = 0;
    }
}

impl Observer for ImpulseReward {
    fn on_fire(&mut self, _now: SimTime, activity: ActivityId, _case: usize, _m: &Marking) {
        if activity == self.target {
            self.total += self.per_firing;
            self.count += 1;
        }
    }
}

/// First-passage reward: the first time a marking predicate holds.
///
/// This is the mechanism behind both *Time-To-Attack* (predicate = attack
/// success marking) and *Time-To-Security-Failure* (predicate = detection /
/// perceived-manifestation marking).
pub struct FirstPassage {
    pred: Box<dyn Fn(&Marking) -> bool + Send + Sync>,
    hit: Option<SimTime>,
}

impl std::fmt::Debug for FirstPassage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FirstPassage")
            .field("hit", &self.hit)
            .finish()
    }
}

impl FirstPassage {
    /// Creates a first-passage observer for `pred`.
    #[must_use]
    pub fn new<P>(pred: P) -> Self
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        FirstPassage {
            pred: Box::new(pred),
            hit: None,
        }
    }

    /// The first time the predicate held, if it ever did.
    #[must_use]
    pub fn time(&self) -> Option<SimTime> {
        self.hit
    }

    /// Whether the predicate ever held.
    #[must_use]
    pub fn reached(&self) -> bool {
        self.hit.is_some()
    }

    /// Forgets the recorded passage for a fresh trajectory.
    pub fn reset(&mut self) {
        self.hit = None;
    }
}

impl Observer for FirstPassage {
    fn on_marking(&mut self, now: SimTime, marking: &Marking) {
        if self.hit.is_none() && (self.pred)(marking) {
            self.hit = Some(now);
        }
    }
}

/// Fans callbacks out to several observers.
#[derive(Default)]
pub struct MultiObserver<'a> {
    observers: Vec<&'a mut dyn Observer>,
}

impl<'a> std::fmt::Debug for MultiObserver<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MultiObserver({} observers)", self.observers.len())
    }
}

impl<'a> MultiObserver<'a> {
    /// Creates an empty multi-observer.
    #[must_use]
    pub fn new() -> Self {
        MultiObserver {
            observers: Vec::new(),
        }
    }

    /// Adds an observer.
    pub fn push(&mut self, obs: &'a mut dyn Observer) {
        self.observers.push(obs);
    }
}

impl<'a> Observer for MultiObserver<'a> {
    fn on_marking(&mut self, now: SimTime, marking: &Marking) {
        for o in &mut self.observers {
            o.on_marking(now, marking);
        }
    }
    fn on_fire(&mut self, now: SimTime, activity: ActivityId, case: usize, marking: &Marking) {
        for o in &mut self.observers {
            o.on_fire(now, activity, case, marking);
        }
    }
    fn on_end(&mut self, now: SimTime, marking: &Marking) {
        for o in &mut self.observers {
            o.on_end(now, marking);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::FiringDistribution;
    use crate::builder::SanBuilder;
    use crate::sim::Simulator;

    /// A place that gains one token per second for `n` seconds.
    fn counter_model(n: u32) -> crate::model::SanModel {
        let mut b = SanBuilder::new();
        let count = b.place("count", 0);
        let fuel = b.place("fuel", n);
        b.timed_activity("tick", FiringDistribution::Deterministic { delay: 1.0 })
            .input_arc(fuel, 1)
            .output_arc(count, 1)
            .build();
        b.build().unwrap()
    }

    #[test]
    fn rate_reward_time_average() {
        let model = counter_model(4);
        let count = model.place_by_name("count").unwrap();
        let mut reward = RateReward::new(move |m| f64::from(m.tokens(count)));
        let mut sim = Simulator::new(&model, 1);
        sim.run_until_observed(SimTime::from_secs(4.0), &mut reward);
        // count(t) = floor(t) on [0,4): time average = (0+1+2+3)/4 = 1.5.
        let mean = reward.mean().unwrap();
        assert!((mean - 1.5).abs() < 1e-9, "mean {mean}");
        assert_eq!(reward.current(), 4.0);
    }

    #[test]
    fn impulse_reward_counts_firings() {
        let model = counter_model(5);
        let tick = model.activity_by_name("tick").unwrap();
        let mut imp = ImpulseReward::new(tick, 2.0);
        let mut sim = Simulator::new(&model, 1);
        sim.run_until_observed(SimTime::from_secs(100.0), &mut imp);
        assert_eq!(imp.count(), 5);
        assert_eq!(imp.total(), 10.0);
    }

    #[test]
    fn first_passage_records_first_hit_only() {
        let model = counter_model(10);
        let count = model.place_by_name("count").unwrap();
        let mut fp = FirstPassage::new(move |m| m.tokens(count) >= 3);
        let mut sim = Simulator::new(&model, 1);
        sim.run_until_observed(SimTime::from_secs(100.0), &mut fp);
        assert_eq!(fp.time(), Some(SimTime::from_secs(3.0)));
        assert!(fp.reached());
    }

    #[test]
    fn first_passage_unreached_is_none() {
        let model = counter_model(2);
        let count = model.place_by_name("count").unwrap();
        let mut fp = FirstPassage::new(move |m| m.tokens(count) >= 5);
        let mut sim = Simulator::new(&model, 1);
        sim.run_until_observed(SimTime::from_secs(100.0), &mut fp);
        assert!(!fp.reached());
        assert_eq!(fp.time(), None);
    }

    #[test]
    fn multi_observer_fans_out() {
        let model = counter_model(3);
        let count = model.place_by_name("count").unwrap();
        let tick = model.activity_by_name("tick").unwrap();
        let mut fp = FirstPassage::new(move |m| m.tokens(count) >= 2);
        let mut imp = ImpulseReward::new(tick, 1.0);
        {
            let mut multi = MultiObserver::new();
            multi.push(&mut fp);
            multi.push(&mut imp);
            let mut sim = Simulator::new(&model, 1);
            sim.run_until_observed(SimTime::from_secs(100.0), &mut multi);
        }
        assert_eq!(fp.time(), Some(SimTime::from_secs(2.0)));
        assert_eq!(imp.count(), 3);
    }

    #[test]
    fn rate_reward_with_zero_window() {
        // Model quiesces instantly (no enabled activities).
        let mut b = SanBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.instantaneous_activity("i")
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build();
        let model = b.build().unwrap();
        let mut reward = RateReward::new(move |m| f64::from(m.tokens(q)));
        let mut sim = Simulator::new(&model, 1);
        sim.run_until_observed(SimTime::from_secs(10.0), &mut reward);
        // Window is [0, 0]; mean should equal the (constant) value 1.
        assert_eq!(reward.mean(), Some(1.0));
    }
}
