//! Exact transient and steady-state evaluation of SAN reward variables —
//! the analytic counterpart of the Monte-Carlo
//! [`TransientSolver`](crate::TransientSolver).
//!
//! The solver explores the tangible state space
//! ([`statespace`](crate::statespace)), solves the resulting CTMC by
//! uniformization ([`ctmc`](crate::ctmc)), and evaluates the same
//! [`RewardSpec`] variants the simulation path accepts:
//!
//! * **Rate** — `E[(1/T) ∫ f(X_t) dt]`, from the integrated transient
//!   distribution;
//! * **FirstPassage** — the predicate's target states are made absorbing
//!   (the standard first-passage transformation); the absorbed mass at
//!   the horizon is the hit probability and the absorbed-mass integral
//!   gives the conditional mean hitting time, matching the Monte-Carlo
//!   estimator (mean over replications that reached the target);
//! * **Impulse** — `∫ Σ_s π_s(t) λ_a(s) dt`, from the per-state firing
//!   intensities tracked during exploration.
//!
//! Results come back in the same [`TransientResult`] shape the
//! Monte-Carlo solver produces, so callers switch backends without
//! changing how they read indicators.

use crate::ctmc::Ctmc;
use crate::error::SanError;
use crate::model::{ActivityId, SanModel};
use crate::solver::{RewardEstimate, RewardSpec, TransientResult};
use crate::statespace::{explore, ExploreOptions, StateSpace};
use diversify_des::{SimTime, Welford};

/// Hit probabilities below this are treated as "never reached": the
/// conditional mean would divide by (numerical) zero.
const MIN_HIT_PROBABILITY: f64 = 1e-12;

/// Exact transient solver over the reachable CTMC of an all-exponential
/// SAN.
///
/// # Examples
///
/// ```
/// use diversify_san::{AnalyticSolver, FiringDistribution, RewardSpec, SanBuilder};
/// use diversify_des::SimTime;
///
/// let mut b = SanBuilder::new();
/// let up = b.place("up", 1);
/// let down = b.place("down", 0);
/// b.timed_activity("fail", FiringDistribution::Exponential { rate: 1.0 })
///     .input_arc(up, 1)
///     .output_arc(down, 1)
///     .build();
/// let model = b.build().unwrap();
///
/// let solver = AnalyticSolver::new(SimTime::from_secs(1.0), 1e-10);
/// let r = solver
///     .solve(&model, &[RewardSpec::first_passage("hit", move |m| m.tokens(down) == 1)])
///     .unwrap();
/// let hit = r.estimate("hit").unwrap();
/// // P(Exp(1) <= 1) = 1 - e^-1, to analytic precision.
/// assert!((hit.probability(0) - (1.0 - (-1.0f64).exp())).abs() < 1e-8);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AnalyticSolver {
    horizon: SimTime,
    tol: f64,
    options: ExploreOptions,
}

impl AnalyticSolver {
    /// Creates a solver for the given horizon and truncation tolerance,
    /// with default exploration limits.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not in `(0, 1)` or the horizon is not finite.
    #[must_use]
    pub fn new(horizon: SimTime, tol: f64) -> Self {
        assert!(tol > 0.0 && tol < 1.0, "tol must be in (0, 1)");
        assert!(horizon.is_finite(), "analytic horizon must be finite");
        AnalyticSolver {
            horizon,
            tol,
            options: ExploreOptions::default(),
        }
    }

    /// Overrides the tangible-state cap.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.options.max_states = max_states;
        self
    }

    /// Overrides all exploration limits.
    #[must_use]
    pub fn with_options(mut self, options: ExploreOptions) -> Self {
        self.options = options;
        self
    }

    /// The configured horizon.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Explores the model's tangible state space, tracking the firing
    /// intensities the given rewards need.
    ///
    /// # Errors
    ///
    /// See [`explore`].
    pub fn explore(
        &self,
        model: &SanModel,
        rewards: &[RewardSpec],
    ) -> Result<StateSpace, SanError> {
        explore(model, &impulse_targets(rewards), self.options)
    }

    /// Solves every reward exactly over `[0, horizon]`.
    ///
    /// The returned [`TransientResult`] has `replications = 0` (no
    /// sampling was involved); each estimate's `stats` holds the exact
    /// value as a single observation and
    /// [`RewardEstimate::probability`] returns the exact hit
    /// probability.
    ///
    /// # Errors
    ///
    /// Propagates exploration failures ([`SanError::NotExponential`],
    /// [`SanError::StateSpaceCap`], [`SanError::VanishingLoop`]), and
    /// returns [`SanError::AnalyticUnsupported`] when `horizon ×
    /// max-exit-rate` exceeds ~10⁹ — uniformization would need that many
    /// matrix-vector steps, so such horizons belong to the steady-state
    /// or Monte-Carlo paths instead.
    pub fn solve(
        &self,
        model: &SanModel,
        rewards: &[RewardSpec],
    ) -> Result<TransientResult, SanError> {
        let space = self.explore(model, rewards)?;
        let horizon = self.horizon.as_secs();
        let max_exit = (0..space.state_count())
            .map(|s| space.exit_rate(s))
            .fold(0.0f64, f64::max);
        if max_exit * horizon > 1.0e9 {
            return Err(SanError::AnalyticUnsupported {
                what: "a horizon requiring over ~1e9 uniformization steps \
                       (use steady_state or Monte-Carlo)",
            });
        }
        let tracked = space.tracked().to_vec();
        // The unmodified chain serves every Rate and Impulse reward; each
        // FirstPassage reward gets its own absorbing transformation.
        let needs_base = rewards
            .iter()
            .any(|r| !matches!(r, RewardSpec::FirstPassage { .. }));
        let base = needs_base
            .then(|| Ctmc::from_state_space(&space).transient(space.initial(), horizon, self.tol));

        let mut estimates = Vec::with_capacity(rewards.len());
        for spec in rewards {
            let estimate = match spec {
                RewardSpec::Rate { name, f } => {
                    let sol = base.as_ref().expect("base chain solved for rate rewards");
                    let value = if horizon > 0.0 {
                        (0..space.state_count())
                            .map(|s| f(space.state(s)) * sol.integral[s])
                            .sum::<f64>()
                            / horizon
                    } else {
                        space
                            .initial()
                            .iter()
                            .map(|&(s, p)| f(space.state(s)) * p)
                            .sum()
                    };
                    exact_estimate(name, Some(value), 1.0)
                }
                RewardSpec::Impulse { name, activity } => {
                    let sol = base
                        .as_ref()
                        .expect("base chain solved for impulse rewards");
                    let k = tracked
                        .iter()
                        .position(|&t| t == *activity)
                        .expect("impulse activity was tracked");
                    let value = (0..space.state_count())
                        .map(|s| space.impulse_intensity(s, k) * sol.integral[s])
                        .sum::<f64>();
                    exact_estimate(name, Some(value), 1.0)
                }
                RewardSpec::FirstPassage { name, pred } => {
                    let absorbing: Vec<bool> = (0..space.state_count())
                        .map(|s| pred(space.state(s)))
                        .collect();
                    let chain = Ctmc::from_state_space_absorbing(&space, &absorbing);
                    let sol = chain.transient(space.initial(), horizon, self.tol);
                    let hit: f64 = absorbing
                        .iter()
                        .enumerate()
                        .filter(|&(_, &a)| a)
                        .map(|(s, _)| sol.pi[s])
                        .sum();
                    let hit = hit.clamp(0.0, 1.0);
                    // E[τ·1{τ≤T}] = T·F(T) − ∫₀ᵀ F(t) dt, where F(t) is
                    // the absorbed mass; conditioning on the hit matches
                    // the Monte-Carlo estimator.
                    let absorbed_integral: f64 = absorbing
                        .iter()
                        .enumerate()
                        .filter(|&(_, &a)| a)
                        .map(|(s, _)| sol.integral[s])
                        .sum();
                    let mean = (hit > MIN_HIT_PROBABILITY)
                        .then(|| ((horizon * hit - absorbed_integral) / hit).max(0.0));
                    exact_estimate(name, mean, hit)
                }
            };
            estimates.push(estimate);
        }
        Ok(TransientResult {
            estimates,
            replications: 0,
            horizon: self.horizon,
        })
    }

    /// Steady-state evaluation: stationary expectations for Rate rewards
    /// and stationary firing rates for Impulse rewards. The long-run
    /// distribution comes from power iteration on the uniformized chain
    /// *started from the initial distribution* — exact for irreducible
    /// chains, and for reducible ones (several recurrent classes, or
    /// absorbing states) it converges to the long-run mixture actually
    /// reachable from the initial marking, which pure stationary-equation
    /// solvers cannot recover. A convergence failure is reported as an
    /// error rather than silently falling back to Gauss–Seidel — on a
    /// reducible chain the stationary equations have non-unique
    /// solutions, so a fallback could return an arbitrary one. Callers
    /// who know their chain is irreducible can run
    /// [`Ctmc::steady_state_gauss_seidel`] directly.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::AnalyticUnsupported`] for FirstPassage rewards
    /// (a stationary hitting time is not defined) or when the iteration
    /// fails to converge; propagates exploration failures.
    pub fn steady_state(
        &self,
        model: &SanModel,
        rewards: &[RewardSpec],
    ) -> Result<Vec<RewardEstimate>, SanError> {
        if rewards
            .iter()
            .any(|r| matches!(r, RewardSpec::FirstPassage { .. }))
        {
            return Err(SanError::AnalyticUnsupported {
                what: "steady-state first-passage rewards",
            });
        }
        let space = self.explore(model, rewards)?;
        let chain = Ctmc::from_state_space(&space);
        let pi = chain.steady_state_power(space.initial(), self.tol.min(1e-12), 200_000)?;
        let tracked = space.tracked().to_vec();
        Ok(rewards
            .iter()
            .map(|spec| match spec {
                RewardSpec::Rate { name, f } => {
                    let value = pi
                        .iter()
                        .enumerate()
                        .map(|(s, &p)| f(space.state(s)) * p)
                        .sum();
                    exact_estimate(name, Some(value), 1.0)
                }
                RewardSpec::Impulse { name, activity } => {
                    let k = tracked
                        .iter()
                        .position(|&t| t == *activity)
                        .expect("impulse activity was tracked");
                    let value = pi
                        .iter()
                        .enumerate()
                        .map(|(s, &p)| space.impulse_intensity(s, k) * p)
                        .sum();
                    exact_estimate(name, Some(value), 1.0)
                }
                RewardSpec::FirstPassage { .. } => unreachable!("rejected above"),
            })
            .collect())
    }
}

/// Activities named by Impulse rewards, deduped in spec order.
fn impulse_targets(rewards: &[RewardSpec]) -> Vec<ActivityId> {
    let mut targets = Vec::new();
    for spec in rewards {
        if let RewardSpec::Impulse { activity, .. } = spec {
            if !targets.contains(activity) {
                targets.push(*activity);
            }
        }
    }
    targets
}

/// Packs an exact value into the Monte-Carlo result shape: the value (if
/// any) becomes a single Welford observation, and the probability is
/// recorded exactly.
fn exact_estimate(name: &str, value: Option<f64>, probability: f64) -> RewardEstimate {
    let mut stats = Welford::new();
    if let Some(v) = value {
        stats.push(v);
    }
    RewardEstimate {
        name: name.to_string(),
        stats,
        occurrences: 0,
        exact_probability: Some(probability),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::FiringDistribution;
    use crate::builder::SanBuilder;

    /// Exp(λ) single-failure model.
    fn failure_model(rate: f64) -> SanModel {
        let mut b = SanBuilder::new();
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        b.timed_activity("fail", FiringDistribution::Exponential { rate })
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build();
        b.build().unwrap()
    }

    #[test]
    fn first_passage_probability_and_mean() {
        let model = failure_model(1.0);
        let down = model.place_by_name("down").unwrap();
        let t = 1.0;
        let solver = AnalyticSolver::new(SimTime::from_secs(t), 1e-12);
        let r = solver
            .solve(
                &model,
                &[RewardSpec::first_passage("hit", move |m| {
                    m.tokens(down) == 1
                })],
            )
            .unwrap();
        let e = r.estimate("hit").unwrap();
        let f = 1.0 - (-t).exp();
        assert!((e.probability(0) - f).abs() < 1e-9);
        // E[τ | τ ≤ 1] = (1 − 2e^{-1})/(1 − e^{-1}) for Exp(1).
        let expect = (1.0 - 2.0 * (-1.0f64).exp()) / f;
        assert!(
            (e.stats.mean() - expect).abs() < 1e-8,
            "{} vs {expect}",
            e.stats.mean()
        );
    }

    #[test]
    fn rate_reward_availability() {
        // E[(1/t) ∫ up] = (1 − e^{-t})/t for Exp(1).
        let model = failure_model(1.0);
        let up = model.place_by_name("up").unwrap();
        let t = 1.0;
        let solver = AnalyticSolver::new(SimTime::from_secs(t), 1e-12);
        let r = solver
            .solve(
                &model,
                &[RewardSpec::rate("avail", move |m| f64::from(m.tokens(up)))],
            )
            .unwrap();
        let expect = (1.0 - (-t).exp()) / t;
        let got = r.estimate("avail").unwrap().stats.mean();
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn impulse_expected_firings() {
        // Failure/repair cycle: firing rate of "fail" under the transient
        // over a long window approaches the stationary rate μλ/(λ+μ).
        let mut b = SanBuilder::new();
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        b.timed_activity("fail", FiringDistribution::Exponential { rate: 2.0 })
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build();
        b.timed_activity("repair", FiringDistribution::Exponential { rate: 3.0 })
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build();
        let model = b.build().unwrap();
        let fail = model.activity_by_name("fail").unwrap();
        let t = 200.0;
        let solver = AnalyticSolver::new(SimTime::from_secs(t), 1e-10);
        let r = solver
            .solve(&model, &[RewardSpec::impulse("fires", fail)])
            .unwrap();
        // Stationary: P(up) = 0.6, so rate ≈ 1.2 firings per unit time.
        let got = r.estimate("fires").unwrap().stats.mean();
        assert!((got / t - 1.2).abs() < 0.01, "rate {}", got / t);
    }

    #[test]
    fn steady_state_rate_and_impulse() {
        let mut b = SanBuilder::new();
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        b.timed_activity("fail", FiringDistribution::Exponential { rate: 2.0 })
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build();
        b.timed_activity("repair", FiringDistribution::Exponential { rate: 3.0 })
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build();
        let model = b.build().unwrap();
        let up_id = model.place_by_name("up").unwrap();
        let fail = model.activity_by_name("fail").unwrap();
        let solver = AnalyticSolver::new(SimTime::from_secs(1.0), 1e-10);
        let est = solver
            .steady_state(
                &model,
                &[
                    RewardSpec::rate("up", move |m| f64::from(m.tokens(up_id))),
                    RewardSpec::impulse("fail-rate", fail),
                ],
            )
            .unwrap();
        assert!((est[0].stats.mean() - 0.6).abs() < 1e-8);
        assert!((est[1].stats.mean() - 1.2).abs() < 1e-8);
    }

    #[test]
    fn steady_state_weights_recurrent_classes_by_reachability() {
        // A reducible chain: the start branches 0.9/0.1 into two disjoint
        // two-state cycles, every state keeping a positive exit rate.
        // The long-run occupancy of cycle A must be 0.9 — the stationary
        // equations alone (Gauss–Seidel) cannot see the branch
        // probability, so this pins the power-from-initial path.
        let mut b = SanBuilder::new();
        let start = b.place("start", 1);
        let a1 = b.place("a1", 0);
        let a2 = b.place("a2", 0);
        let b1 = b.place("b1", 0);
        let b2 = b.place("b2", 0);
        b.timed_activity("branch", FiringDistribution::Exponential { rate: 1.0 })
            .input_arc(start, 1)
            .case(0.9, vec![(a1, 1)])
            .case(0.1, vec![(b1, 1)])
            .build();
        for (name, from, to) in [
            ("a12", a1, a2),
            ("a21", a2, a1),
            ("b12", b1, b2),
            ("b21", b2, b1),
        ] {
            b.timed_activity(name, FiringDistribution::Exponential { rate: 2.0 })
                .input_arc(from, 1)
                .output_arc(to, 1)
                .build();
        }
        let model = b.build().unwrap();
        let solver = AnalyticSolver::new(SimTime::from_secs(1.0), 1e-10);
        let est = solver
            .steady_state(
                &model,
                &[RewardSpec::rate("in-a", move |m| {
                    f64::from(m.tokens(a1) + m.tokens(a2))
                })],
            )
            .unwrap();
        assert!(
            (est[0].stats.mean() - 0.9).abs() < 1e-6,
            "cycle-A occupancy {}",
            est[0].stats.mean()
        );
    }

    #[test]
    fn huge_horizon_is_rejected_not_hung() {
        let model = failure_model(1.0);
        let down = model.place_by_name("down").unwrap();
        let solver = AnalyticSolver::new(SimTime::from_secs(1e16), 1e-10);
        let err = solver
            .solve(
                &model,
                &[RewardSpec::first_passage("hit", move |m| {
                    m.tokens(down) == 1
                })],
            )
            .unwrap_err();
        assert!(matches!(err, SanError::AnalyticUnsupported { .. }));
    }

    #[test]
    fn steady_state_rejects_first_passage() {
        let model = failure_model(1.0);
        let down = model.place_by_name("down").unwrap();
        let solver = AnalyticSolver::new(SimTime::from_secs(1.0), 1e-10);
        let err = solver
            .steady_state(
                &model,
                &[RewardSpec::first_passage("hit", move |m| {
                    m.tokens(down) == 1
                })],
            )
            .unwrap_err();
        assert!(matches!(err, SanError::AnalyticUnsupported { .. }));
    }

    #[test]
    fn unreached_first_passage_has_empty_stats() {
        // Predicate can never hold (needs 2 tokens in a 1-token model).
        let model = failure_model(1.0);
        let down = model.place_by_name("down").unwrap();
        let solver = AnalyticSolver::new(SimTime::from_secs(5.0), 1e-10);
        let r = solver
            .solve(
                &model,
                &[RewardSpec::first_passage("never", move |m| {
                    m.tokens(down) >= 2
                })],
            )
            .unwrap();
        let e = r.estimate("never").unwrap();
        assert_eq!(e.probability(0), 0.0);
        assert_eq!(e.stats.count(), 0);
    }
}
