//! # diversify-san
//!
//! A **Stochastic Activity Network (SAN)** formalism with a Monte-Carlo
//! transient solver — the modeling machinery the *Diversify!* paper (DSN
//! 2013) uses for its attack models: *"A system model encompassing
//! control/monitoring nodes and PLCs has been developed by means of the
//! stochastic activity networks (SAN) formalism."*
//!
//! SANs generalize stochastic Petri nets with:
//!
//! * **places** holding token counts (the [`Marking`]),
//! * **timed activities** with general firing-time distributions
//!   ([`FiringDistribution`]),
//! * **instantaneous activities** that fire as soon as they are enabled,
//! * **case distributions** — a firing probabilistically selects one of
//!   several output effects,
//! * **input gates** (arbitrary enabling predicates + marking updates) and
//!   **output gates** (arbitrary marking updates).
//!
//! The [`Simulator`] executes a SAN with the race execution policy
//! (enabled activities race; the earliest completion fires; activities
//! disabled by a firing are cancelled and re-sample when re-enabled), and
//! [`TransientSolver`] estimates reward variables over independent
//! replications.
//!
//! When every timed activity is exponential, the same model is an exact
//! continuous-time Markov chain: [`explore`] enumerates its tangible
//! state space (with vanishing-state elimination), the [`ctmc`] module
//! solves it by uniformization or steady-state iteration, and
//! [`AnalyticSolver`] evaluates the same [`RewardSpec`]s exactly — a
//! second, independent oracle for every security indicator. Choose per
//! call with [`solver::Method`] / [`solve`].
//!
//! ## Example
//!
//! ```
//! use diversify_san::{SanBuilder, FiringDistribution, Simulator};
//! use diversify_des::SimTime;
//!
//! // A two-stage attack: initial -> activated -> root.
//! let mut b = SanBuilder::new();
//! let initial = b.place("initial", 1);
//! let activated = b.place("activated", 0);
//! let root = b.place("root", 0);
//! b.timed_activity("activate", FiringDistribution::Exponential { rate: 2.0 })
//!     .input_arc(initial, 1)
//!     .output_arc(activated, 1)
//!     .build();
//! b.timed_activity("escalate", FiringDistribution::Exponential { rate: 1.0 })
//!     .input_arc(activated, 1)
//!     .output_arc(root, 1)
//!     .build();
//! let model = b.build().unwrap();
//!
//! let mut sim = Simulator::new(&model, 42);
//! sim.run_until(SimTime::from_secs(1e6));
//! assert_eq!(sim.marking().tokens(root), 1);
//! ```

#![warn(missing_docs)]
// The unwrap/expect ban (clippy.toml `disallowed-methods`) is the
// fault-tolerance discipline of `diversify-des`/`diversify-core`; this
// crate predates it and is exercised through those hardened seams.
#![allow(clippy::disallowed_methods)]

pub mod activity;
pub mod analytic;
pub mod builder;
pub mod ctmc;
pub mod error;
pub mod model;
pub mod reward;
pub mod sim;
pub mod solver;
pub mod statespace;

pub use activity::{Activity, ActivityTiming, Case, FiringDistribution};
pub use analytic::AnalyticSolver;
pub use builder::{ActivityBuilder, SanBuilder};
pub use ctmc::{poisson_weights, Ctmc, PoissonWeights, TransientDistribution};
pub use error::SanError;
pub use model::{ActivityId, Marking, PlaceId, SanModel};
pub use reward::{FirstPassage, ImpulseReward, Observer, RateReward};
pub use sim::{Engine, SimState, Simulator};
pub use solver::{solve, Method, PartialTransient, RewardSpec, TransientResult, TransientSolver};
pub use statespace::{explore, ExploreOptions, StateSpace};
