//! Breadth-first reachability exploration of a SAN into an exact CTMC.
//!
//! When every timed activity is exponential, a SAN is a continuous-time
//! Markov chain over its reachable markings. [`explore`] enumerates the
//! *tangible* markings (those with no instantaneous activity enabled),
//! collapsing zero-time instantaneous cascades by **vanishing-state
//! elimination**: each timed firing is expanded into a probability
//! distribution over the tangible markings its cascade can settle in,
//! and the branch probabilities multiply into the transition rates.
//!
//! The result is a sparse infinitesimal generator in CSR form plus the
//! initial tangible distribution — exactly what the
//! [`ctmc`](crate::ctmc) solvers consume. Exploration is capped by
//! [`ExploreOptions::max_states`] so models with unbounded or huge
//! reachability sets fail fast with [`SanError::StateSpaceCap`] instead
//! of exhausting memory; such models route to the Monte-Carlo backend.

use crate::activity::ActivityTiming;
use crate::error::SanError;
use crate::model::{ActivityId, Marking, SanModel};
use crate::FiringDistribution;
use std::collections::HashMap;
use std::rc::Rc;

/// Limits for [`explore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Maximum number of tangible states before exploration aborts with
    /// [`SanError::StateSpaceCap`].
    pub max_states: usize,
    /// Maximum instantaneous-cascade depth per firing. Genuine zero-time
    /// loops are caught exactly (a marking revisited within one cascade);
    /// this bound only guards cascades whose markings grow without ever
    /// repeating. The default matches the simulator's
    /// instantaneous-livelock limit, so the two backends agree on which
    /// deep-but-finite cascades are valid.
    pub max_vanishing_depth: u32,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_states: 100_000,
            max_vanishing_depth: 100_000,
        }
    }
}

/// The reachable tangible state space of an all-exponential SAN, with its
/// sparse infinitesimal generator.
///
/// Row `i` of the generator holds the off-diagonal rates `q_ij` (CSR);
/// the diagonal is implied: `q_ii = -exit_rate(i)`. Self-loop jump rates
/// (a firing whose cascade settles back in the same marking) carry no
/// probability flow and are kept separately for diagnostics — together
/// with the off-diagonal row sum they reconstruct the total exponential
/// rate enabled in the state, which is what the generator-consistency
/// property tests check.
#[derive(Debug)]
pub struct StateSpace {
    states: Vec<Marking>,
    initial: Vec<(usize, f64)>,
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    rates: Vec<f64>,
    exit: Vec<f64>,
    self_rate: Vec<f64>,
    tracked: Vec<ActivityId>,
    /// `impulse[s][k]`: expected firings of `tracked[k]` per unit time in
    /// state `s` (timed firings plus the instantaneous firings their
    /// cascades trigger).
    impulse: Vec<Vec<f64>>,
}

impl StateSpace {
    /// Number of tangible states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The marking of tangible state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn state(&self, i: usize) -> &Marking {
        &self.states[i]
    }

    /// The initial probability distribution over tangible states (the
    /// model's initial marking with any instantaneous cascade resolved).
    /// Probabilities sum to 1.
    #[must_use]
    pub fn initial(&self) -> &[(usize, f64)] {
        &self.initial
    }

    /// Off-diagonal generator row `i` as `(target state, rate)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn transitions(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.cols[lo..hi]
            .iter()
            .zip(&self.rates[lo..hi])
            .map(|(&c, &r)| (c, r))
    }

    /// Total off-diagonal rate out of state `i` (`-q_ii`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn exit_rate(&self, i: usize) -> f64 {
        self.exit[i]
    }

    /// Rate of jumps from state `i` that settle back in state `i` (e.g. a
    /// failed attempt that returns its token). These carry no probability
    /// flow and are excluded from the generator.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn self_loop_rate(&self, i: usize) -> f64 {
        self.self_rate[i]
    }

    /// The activities whose firing intensities were tracked during
    /// exploration (for impulse rewards).
    #[must_use]
    pub fn tracked(&self) -> &[ActivityId] {
        &self.tracked
    }

    /// Expected firings per unit time of tracked activity `k` while the
    /// chain sojourns in state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `k` is out of range.
    #[must_use]
    pub fn impulse_intensity(&self, i: usize, k: usize) -> f64 {
        self.impulse[i][k]
    }

    /// Dense CSR view `(row_ptr, cols, rates, exit_rates)` for solvers.
    #[must_use]
    pub fn generator(&self) -> (&[usize], &[usize], &[f64], &[f64]) {
        (&self.row_ptr, &self.cols, &self.rates, &self.exit)
    }
}

/// One resolved branch of a vanishing cascade: a tangible marking, the
/// probability of settling there, and how often each tracked activity
/// fired on the way.
struct Branch {
    marking: Marking,
    prob: f64,
    counts: Vec<f64>,
}

/// Fires `activity`/`case` on a copy of `marking` (input arcs, input-gate
/// effects, output arcs, output gates) — the simulator's firing semantics
/// without time or randomness.
fn apply_firing(
    model: &SanModel,
    activity: ActivityId,
    case_idx: usize,
    marking: &Marking,
) -> Marking {
    let a = model.activity(activity);
    let mut m = marking.clone();
    for &(p, n) in &a.input_arcs {
        m.remove_tokens(p, n);
    }
    for g in &a.input_gates {
        (g.effect)(&mut m);
    }
    let case = &a.cases[case_idx];
    for &(p, n) in &case.output_arcs {
        m.add_tokens(p, n);
    }
    for g in &case.output_gates {
        (g.effect)(&mut m);
    }
    m
}

/// Cache slot for one vanishing (or tangible) marking's settling
/// distribution.
enum Settled {
    /// Currently on the recursion stack: reaching it again is a genuine
    /// zero-time loop.
    InProgress,
    /// Fully resolved: the distribution over tangible markings, with
    /// expected tracked-firing counts *from this marking onward*.
    Done(Rc<Vec<Branch>>),
}

/// Vanishing-state elimination context: resolves the instantaneous
/// cascade reachable from a marking into a distribution over tangible
/// markings.
///
/// Settling distributions are memoized per marking — concurrent
/// instantaneous activities would otherwise expand every interleaving
/// (factorial in the number of simultaneously enabled activities), and
/// the in-progress markers double as exact zero-time-loop detection.
struct Resolver<'a> {
    model: &'a SanModel,
    tracked: &'a [ActivityId],
    max_depth: u32,
    cache: HashMap<Vec<u32>, Settled>,
}

/// One suspended cascade marking on the explicit DFS stack: the marking
/// being eliminated, the instantaneous activities enabled in it, the
/// `(activity, case)` edge currently being expanded, and the branches
/// accumulated so far.
struct Frame {
    key: Vec<u32>,
    marking: Marking,
    enabled: Vec<ActivityId>,
    total_weight: f64,
    /// Index into `enabled` of the edge being expanded.
    ai: usize,
    /// Case index of the edge being expanded.
    ci: usize,
    acc: Vec<Branch>,
    slot_of: HashMap<Vec<u32>, usize>,
}

impl Frame {
    /// Moves to the next `(activity, case)` edge.
    fn advance(&mut self, model: &SanModel) {
        self.ci += 1;
        if self.ci >= model.activity(self.enabled[self.ai]).case_weights().len() {
            self.ci = 0;
            self.ai += 1;
        }
    }

    /// Folds a fully settled child distribution into the accumulator with
    /// edge probability `p_branch`, merging duplicate tangible markings:
    /// probabilities add, counts combine probability-weighted so
    /// Σ prob·counts (all the impulse math uses) is preserved.
    /// `tracked_idx` is the fired activity's slot in the tracked list.
    fn merge(&mut self, child: &[Branch], p_branch: f64, tracked_idx: Option<usize>) {
        for b in child {
            let p = p_branch * b.prob;
            let count_of = |k: usize| b.counts[k] + f64::from(tracked_idx == Some(k));
            match self.slot_of.get(b.marking.as_slice()) {
                Some(&i) => {
                    let e = &mut self.acc[i];
                    for k in 0..e.counts.len() {
                        e.counts[k] = (e.counts[k] * e.prob + count_of(k) * p) / (e.prob + p);
                    }
                    e.prob += p;
                }
                None => {
                    self.slot_of
                        .insert(b.marking.as_slice().to_vec(), self.acc.len());
                    self.acc.push(Branch {
                        marking: b.marking.clone(),
                        prob: p,
                        counts: (0..b.counts.len()).map(count_of).collect(),
                    });
                }
            }
        }
    }
}

/// Either an immediately settled marking (tangible, or cache hit) or a
/// new frame to expand.
enum Opened {
    Done(Rc<Vec<Branch>>),
    Frame(Box<Frame>),
}

impl Resolver<'_> {
    /// Prepares `marking` for elimination: tangible markings settle to
    /// themselves immediately; vanishing markings become a frame and are
    /// marked in-progress. Assumes the marking is not in the cache.
    fn open(&mut self, marking: Marking) -> Opened {
        let model = self.model;
        let key = marking.as_slice().to_vec();
        let enabled: Vec<ActivityId> = model
            .index
            .instantaneous
            .iter()
            .copied()
            .filter(|&a| model.is_enabled(a, &marking))
            .collect();
        if enabled.is_empty() {
            let done = Rc::new(vec![Branch {
                marking,
                prob: 1.0,
                counts: vec![0.0; self.tracked.len()],
            }]);
            self.cache.insert(key, Settled::Done(Rc::clone(&done)));
            return Opened::Done(done);
        }
        self.cache.insert(key.clone(), Settled::InProgress);
        let total_weight: f64 = enabled
            .iter()
            .map(|&a| {
                model
                    .activity(a)
                    .instantaneous_weight()
                    .expect("filtered to instantaneous")
            })
            .sum();
        Opened::Frame(Box::new(Frame {
            key,
            marking,
            enabled,
            total_weight,
            ai: 0,
            ci: 0,
            acc: Vec::new(),
            slot_of: HashMap::new(),
        }))
    }

    /// Resolves the cascade from `marking` into its settling
    /// distribution: `(tangible marking, probability, expected tracked
    /// firings on the way)` branches summing to probability 1.
    ///
    /// Iterative depth-first elimination with an explicit stack, so
    /// cascade depth is bounded by `max_depth` rather than the thread
    /// stack.
    fn settle(&mut self, marking: Marking) -> Result<Rc<Vec<Branch>>, SanError> {
        let model = self.model;
        if let Some(Settled::Done(r)) = self.cache.get(marking.as_slice()) {
            return Ok(Rc::clone(r));
        }
        let mut stack: Vec<Box<Frame>> = match self.open(marking) {
            Opened::Done(done) => return Ok(done),
            Opened::Frame(f) => vec![f],
        };
        loop {
            let depth = stack.len() as u32;
            let frame = stack.last_mut().expect("loop invariant: non-empty stack");
            if frame.ai >= frame.enabled.len() {
                // Every edge expanded: this marking is settled.
                let frame = stack.pop().expect("frame just inspected");
                let done = Rc::new(frame.acc);
                self.cache
                    .insert(frame.key, Settled::Done(Rc::clone(&done)));
                let Some(parent) = stack.last_mut() else {
                    return Ok(done);
                };
                let (p_branch, tracked_idx) = self.edge(parent);
                parent.merge(&done, p_branch, tracked_idx);
                parent.advance(model);
                continue;
            }
            let a = frame.enabled[frame.ai];
            let act = model.activity(a);
            let case_total: f64 = act.case_weights().iter().sum();
            if act.case_weights()[frame.ci] / case_total == 0.0 {
                frame.advance(model);
                continue;
            }
            let next = apply_firing(model, a, frame.ci, &frame.marking);
            match self.cache.get(next.as_slice()) {
                Some(Settled::Done(r)) => {
                    let child = Rc::clone(r);
                    let (p_branch, tracked_idx) = self.edge(frame);
                    frame.merge(&child, p_branch, tracked_idx);
                    frame.advance(model);
                }
                Some(Settled::InProgress) => {
                    // The cascade re-entered a marking still being
                    // eliminated: a genuine zero-time loop.
                    return Err(SanError::VanishingLoop { depth });
                }
                None => {
                    if depth >= self.max_depth {
                        return Err(SanError::VanishingLoop {
                            depth: self.max_depth,
                        });
                    }
                    match self.open(next) {
                        Opened::Done(child) => {
                            let (p_branch, tracked_idx) = self.edge(frame);
                            frame.merge(&child, p_branch, tracked_idx);
                            frame.advance(model);
                        }
                        Opened::Frame(f) => stack.push(f),
                    }
                }
            }
        }
    }

    /// Probability and tracked-slot of the frame's current edge.
    fn edge(&self, frame: &Frame) -> (f64, Option<usize>) {
        let a = frame.enabled[frame.ai];
        let act = self.model.activity(a);
        let weight = act
            .instantaneous_weight()
            .expect("enabled holds instantaneous activities");
        let case_total: f64 = act.case_weights().iter().sum();
        let p_branch = (weight / frame.total_weight) * (act.case_weights()[frame.ci] / case_total);
        let tracked_idx = self.tracked.iter().position(|&t| t == a);
        (p_branch, tracked_idx)
    }
}

/// Explores the tangible reachable state space of `model` and assembles
/// its sparse infinitesimal generator.
///
/// `tracked` names the activities whose firing intensities the caller
/// needs (impulse rewards); pass `&[]` when none are needed.
///
/// # Errors
///
/// * [`SanError::NotExponential`] — a timed activity has a non-exponential
///   firing distribution (the model is not a CTMC).
/// * [`SanError::StateSpaceCap`] — more than
///   [`ExploreOptions::max_states`] tangible states are reachable.
/// * [`SanError::VanishingLoop`] — instantaneous activities form a
///   zero-time loop.
pub fn explore(
    model: &SanModel,
    tracked: &[ActivityId],
    options: ExploreOptions,
) -> Result<StateSpace, SanError> {
    // Gather (activity, rate) for every timed activity up front; reject
    // non-exponential timing before any exploration work.
    let mut timed: Vec<(ActivityId, f64)> = Vec::new();
    for idx in 0..model.activity_count() {
        let id = ActivityId(idx);
        match model.activity(id).timing {
            ActivityTiming::Instantaneous { .. } => {}
            ActivityTiming::Timed(FiringDistribution::Exponential { rate }) => {
                timed.push((id, rate));
            }
            ActivityTiming::Timed(_) => {
                return Err(SanError::NotExponential {
                    activity: model.activity(id).name.clone(),
                });
            }
        }
    }

    let mut space = StateSpace {
        states: Vec::new(),
        initial: Vec::new(),
        row_ptr: vec![0],
        cols: Vec::new(),
        rates: Vec::new(),
        exit: Vec::new(),
        self_rate: Vec::new(),
        tracked: tracked.to_vec(),
        impulse: Vec::new(),
    };
    let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
    let intern = |space: &mut StateSpace,
                  index: &mut HashMap<Vec<u32>, usize>,
                  m: Marking|
     -> Result<usize, SanError> {
        let key = m.as_slice().to_vec();
        if let Some(&i) = index.get(&key) {
            return Ok(i);
        }
        if space.states.len() >= options.max_states {
            return Err(SanError::StateSpaceCap {
                cap: options.max_states,
            });
        }
        let i = space.states.len();
        index.insert(key, i);
        space.states.push(m);
        Ok(i)
    };

    // Resolve the initial marking's cascade into the initial tangible
    // distribution. Firing counts during this settling are discarded —
    // the Monte-Carlo solver attaches its observers only after the
    // simulator's constructor has settled, so impulse semantics match.
    let mut resolver = Resolver {
        model,
        tracked,
        max_depth: options.max_vanishing_depth,
        cache: HashMap::new(),
    };
    let initial_branches = resolver.settle(model.initial_marking())?;
    let mut initial_acc: HashMap<usize, f64> = HashMap::new();
    for b in initial_branches.iter() {
        let i = intern(&mut space, &mut index, b.marking.clone())?;
        *initial_acc.entry(i).or_insert(0.0) += b.prob;
    }
    let mut initial: Vec<(usize, f64)> = initial_acc.into_iter().collect();
    initial.sort_unstable_by_key(|&(i, _)| i);
    space.initial = initial;

    // Breadth-first expansion; states are expanded in index order, so the
    // CSR rows are emitted in order too.
    let mut frontier = 0usize;
    let mut row: Vec<(usize, f64)> = Vec::new();
    while frontier < space.states.len() {
        row.clear();
        let mut self_rate = 0.0;
        let mut impulse_row = vec![0.0; tracked.len()];
        let marking = space.states[frontier].clone();
        for &(id, rate) in &timed {
            if !model.is_enabled(id, &marking) {
                continue;
            }
            let act = model.activity(id);
            let case_total: f64 = act.case_weights().iter().sum();
            let tracked_idx = tracked.iter().position(|&t| t == id);
            for (ci, &cw) in act.case_weights().iter().enumerate() {
                let p_case = cw / case_total;
                if p_case == 0.0 {
                    continue;
                }
                let fired = apply_firing(model, id, ci, &marking);
                let settled = resolver.settle(fired)?;
                for b in settled.iter() {
                    let r = rate * p_case * b.prob;
                    let j = intern(&mut space, &mut index, b.marking.clone())?;
                    if j == frontier {
                        self_rate += r;
                    } else {
                        row.push((j, r));
                    }
                    for (k, c) in b.counts.iter().enumerate() {
                        impulse_row[k] += r * c;
                    }
                }
            }
            if let Some(k) = tracked_idx {
                // The timed firing itself, independent of case and branch.
                impulse_row[k] += rate;
            }
        }
        // Merge duplicate targets and append the CSR row.
        row.sort_unstable_by_key(|&(j, _)| j);
        let mut exit = 0.0;
        let mut last: Option<usize> = None;
        for &(j, r) in &row {
            exit += r;
            if last == Some(j) {
                *space.rates.last_mut().expect("row entry exists") += r;
            } else {
                space.cols.push(j);
                space.rates.push(r);
                last = Some(j);
            }
        }
        space.row_ptr.push(space.cols.len());
        space.exit.push(exit);
        space.self_rate.push(self_rate);
        space.impulse.push(impulse_row);
        frontier += 1;
    }
    Ok(space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SanBuilder;

    /// up --Exp(2)--> down, down --Exp(3)--> up.
    fn two_state() -> SanModel {
        let mut b = SanBuilder::new();
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        b.timed_activity("fail", FiringDistribution::Exponential { rate: 2.0 })
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build();
        b.timed_activity("repair", FiringDistribution::Exponential { rate: 3.0 })
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build();
        b.build().unwrap()
    }

    #[test]
    fn two_state_generator() {
        let model = two_state();
        let ss = explore(&model, &[], ExploreOptions::default()).unwrap();
        assert_eq!(ss.state_count(), 2);
        assert_eq!(ss.initial(), &[(0, 1.0)]);
        let t0: Vec<_> = ss.transitions(0).collect();
        assert_eq!(t0, vec![(1, 2.0)]);
        let t1: Vec<_> = ss.transitions(1).collect();
        assert_eq!(t1, vec![(0, 3.0)]);
        assert_eq!(ss.exit_rate(0), 2.0);
        assert_eq!(ss.exit_rate(1), 3.0);
    }

    #[test]
    fn case_split_divides_rate() {
        // src --Exp(4), cases {0.75 -> a, 0.25 -> b}.
        let mut b = SanBuilder::new();
        let src = b.place("src", 1);
        let pa = b.place("a", 0);
        let pb = b.place("b", 0);
        b.timed_activity("t", FiringDistribution::Exponential { rate: 4.0 })
            .input_arc(src, 1)
            .case(0.75, vec![(pa, 1)])
            .case(0.25, vec![(pb, 1)])
            .build();
        let model = b.build().unwrap();
        let ss = explore(&model, &[], ExploreOptions::default()).unwrap();
        assert_eq!(ss.state_count(), 3);
        let t0: Vec<_> = ss.transitions(0).collect();
        assert_eq!(t0.len(), 2);
        let total: f64 = t0.iter().map(|&(_, r)| r).sum();
        assert!((total - 4.0).abs() < 1e-12);
        assert!((t0[0].1 - 3.0).abs() < 1e-12);
        assert!((t0[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_loop_case_leaves_generator() {
        // Failed attempts return the token: rate p*λ forward, (1-p)*λ as
        // a self-loop that must not enter the generator.
        let mut b = SanBuilder::new();
        let s0 = b.place("s0", 1);
        let s1 = b.place("s1", 0);
        b.timed_activity("try", FiringDistribution::Exponential { rate: 2.0 })
            .input_arc(s0, 1)
            .case(0.25, vec![(s1, 1)])
            .case(0.75, vec![(s0, 1)])
            .build();
        let model = b.build().unwrap();
        let ss = explore(&model, &[], ExploreOptions::default()).unwrap();
        assert_eq!(ss.state_count(), 2);
        assert!((ss.exit_rate(0) - 0.5).abs() < 1e-12);
        assert!((ss.self_loop_rate(0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn vanishing_states_are_eliminated() {
        // pump moves a token into a stage place where two instantaneous
        // routes (weights 3 and 1) race; tangible states never hold a
        // stage token.
        let mut b = SanBuilder::new();
        let fuel = b.place("fuel", 1);
        let stage = b.place("stage", 0);
        let out_a = b.place("out_a", 0);
        let out_b = b.place("out_b", 0);
        b.timed_activity("pump", FiringDistribution::Exponential { rate: 1.0 })
            .input_arc(fuel, 1)
            .output_arc(stage, 1)
            .build();
        b.instantaneous_activity("route_a")
            .input_arc(stage, 1)
            .output_arc(out_a, 1)
            .build();
        b.instantaneous_activity("route_b")
            .input_arc(stage, 1)
            .output_arc(out_b, 1)
            .build();
        let model = b.build().unwrap();
        let ss = explore(&model, &[], ExploreOptions::default()).unwrap();
        let stage_id = model.place_by_name("stage").unwrap();
        for i in 0..ss.state_count() {
            assert_eq!(ss.state(i).tokens(stage_id), 0, "state {i} is vanishing");
        }
        // fuel -> {out_a, out_b} each at rate 0.5.
        let t0: Vec<_> = ss.transitions(0).collect();
        assert_eq!(t0.len(), 2);
        assert!((t0[0].1 - 0.5).abs() < 1e-12);
        assert!((t0[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_exponential_rejected() {
        let mut b = SanBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.timed_activity("t", FiringDistribution::Deterministic { delay: 1.0 })
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build();
        let model = b.build().unwrap();
        assert!(matches!(
            explore(&model, &[], ExploreOptions::default()),
            Err(SanError::NotExponential { .. })
        ));
    }

    #[test]
    fn state_cap_enforced() {
        // An unbounded counter: tokens accumulate forever.
        let mut b = SanBuilder::new();
        let sink = b.place("sink", 0);
        b.timed_activity("tick", FiringDistribution::Exponential { rate: 1.0 })
            .output_arc(sink, 1)
            .build();
        let model = b.build().unwrap();
        let err = explore(
            &model,
            &[],
            ExploreOptions {
                max_states: 50,
                ..ExploreOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, SanError::StateSpaceCap { cap: 50 });
    }

    #[test]
    fn concurrent_instantaneous_settle_in_polynomial_time() {
        // One timed firing enables 12 independent instantaneous movers at
        // once. Without memoized settling this expands 12! ≈ 4.8e8
        // interleavings; with it, only the 2^12 distinct vanishing
        // markings are visited.
        let k = 12usize;
        let mut b = SanBuilder::new();
        let src = b.place("src", 1);
        let stages: Vec<_> = (0..k).map(|i| b.place(format!("stage{i}"), 0)).collect();
        let outs: Vec<_> = (0..k).map(|i| b.place(format!("out{i}"), 0)).collect();
        let mut fire = b.timed_activity("go", FiringDistribution::Exponential { rate: 1.0 });
        fire = fire.input_arc(src, 1);
        for &s in &stages {
            fire = fire.output_arc(s, 1);
        }
        fire.build();
        for i in 0..k {
            b.instantaneous_activity(format!("route{i}"))
                .input_arc(stages[i], 1)
                .output_arc(outs[i], 1)
                .build();
        }
        let model = b.build().unwrap();
        let ss = explore(&model, &[], ExploreOptions::default()).unwrap();
        // src-held and all-routed: two tangible states, one transition.
        assert_eq!(ss.state_count(), 2);
        let t0: Vec<_> = ss.transitions(0).collect();
        assert_eq!(t0.len(), 1);
        assert_eq!(t0[0].0, 1);
        assert!((t0[0].1 - 1.0).abs() < 1e-12, "rate {}", t0[0].1);
    }

    #[test]
    fn deep_finite_cascade_is_not_a_loop() {
        // A 1500-hop instantaneous chain: deeper than the old 1000-step
        // bound but loop-free; both backends must accept it (the
        // simulator's livelock limit is 100k firings).
        let n = 1_500usize;
        let mut b = SanBuilder::new();
        let hops: Vec<_> = (0..=n)
            .map(|i| b.place(format!("h{i}"), u32::from(i == 0)))
            .collect();
        b.timed_activity("kick", FiringDistribution::Exponential { rate: 1.0 })
            .input_arc(hops[n], 1)
            .output_arc(hops[n], 1)
            .build();
        for i in 0..n {
            b.instantaneous_activity(format!("hop{i}"))
                .input_arc(hops[i], 1)
                .output_arc(hops[i + 1], 1)
                .build();
        }
        let model = b.build().unwrap();
        let ss = explore(&model, &[], ExploreOptions::default()).unwrap();
        assert_eq!(ss.state_count(), 1);
        assert_eq!(ss.state(0).tokens(hops[n]), 1);
    }

    #[test]
    fn vanishing_loop_detected() {
        let mut b = SanBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.instantaneous_activity("spin")
            .input_arc(p, 1)
            .output_arc(p, 1)
            .build();
        b.timed_activity("t", FiringDistribution::Exponential { rate: 1.0 })
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build();
        let model = b.build().unwrap();
        assert!(matches!(
            explore(&model, &[], ExploreOptions::default()),
            Err(SanError::VanishingLoop { .. })
        ));
    }

    #[test]
    fn impulse_intensity_counts_cascade_firings() {
        // pump (tracked) fires at rate 1; each firing triggers exactly one
        // instantaneous route firing (also tracked).
        let mut b = SanBuilder::new();
        let fuel = b.place("fuel", 3);
        let stage = b.place("stage", 0);
        let out = b.place("out", 0);
        b.timed_activity("pump", FiringDistribution::Exponential { rate: 1.0 })
            .input_arc(fuel, 1)
            .output_arc(stage, 1)
            .build();
        b.instantaneous_activity("route")
            .input_arc(stage, 1)
            .output_arc(out, 1)
            .build();
        let model = b.build().unwrap();
        let pump = model.activity_by_name("pump").unwrap();
        let route = model.activity_by_name("route").unwrap();
        let ss = explore(&model, &[pump, route], ExploreOptions::default()).unwrap();
        // In every state with fuel left, both intensities are 1.0.
        let fuel_id = model.place_by_name("fuel").unwrap();
        for i in 0..ss.state_count() {
            let expected = if ss.state(i).tokens(fuel_id) > 0 {
                1.0
            } else {
                0.0
            };
            assert!((ss.impulse_intensity(i, 0) - expected).abs() < 1e-12);
            assert!((ss.impulse_intensity(i, 1) - expected).abs() < 1e-12);
        }
    }
}
