//! Exact numerical solution of sparse CTMCs: transient analysis by
//! **uniformization** with adaptive (Fox–Glynn-style) Poisson truncation,
//! and steady-state analysis by power iteration or Gauss–Seidel.
//!
//! A [`Ctmc`] is a CSR infinitesimal generator detached from any SAN
//! structure; [`crate::analytic`] builds one from a
//! [`StateSpace`] and maps reward
//! variables onto the solved distributions.
//!
//! ## Uniformization
//!
//! With `Λ ≥ max_i |q_ii|`, the uniformized DTMC `P = I + Q/Λ` turns the
//! transient distribution into a Poisson mixture,
//!
//! ```text
//! π(t) = Σ_n  pois(Λt; n) · π(0) Pⁿ
//! ∫₀ᵗ π(u) du = (1/Λ) Σ_n (1 − Pois(Λt; n)) · π(0) Pⁿ
//! ```
//!
//! where `Pois` is the Poisson CDF. Both series are evaluated together;
//! the truncation point adapts to the requested tolerance. The integral
//! form is what rate rewards (time averages) and first-passage means
//! consume.

use crate::error::SanError;
use crate::statespace::StateSpace;

/// Poisson probabilities `pois(λt; n)` for `n = 0..=right()`, computed
/// mode-centered so large `λt` neither under- nor overflows.
#[derive(Debug, Clone)]
pub struct PoissonWeights {
    weights: Vec<f64>,
}

impl PoissonWeights {
    /// Weight of `n` (zero beyond the truncation point).
    #[must_use]
    pub fn weight(&self, n: usize) -> f64 {
        self.weights.get(n).copied().unwrap_or(0.0)
    }

    /// The largest `n` with a retained weight.
    #[must_use]
    pub fn right(&self) -> usize {
        self.weights.len().saturating_sub(1)
    }

    /// All retained weights, from `n = 0`.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Computes Poisson weights for mean `lambda_t`, truncated on the right
/// once the missing tail is below `tol / (1 + lambda_t)` (so the *time
/// integral* of the truncated series is also within `tol`).
///
/// # Panics
///
/// Panics if `lambda_t` is negative or NaN, `tol` is not in `(0, 1)`, or
/// `lambda_t` is at or above 2⁵³ (where `n + 1.0` stops advancing and
/// the extension loops could not terminate — such a series would need
/// ~`lambda_t` terms anyway, far past any feasible computation).
#[must_use]
pub fn poisson_weights(lambda_t: f64, tol: f64) -> PoissonWeights {
    assert!(
        lambda_t.is_finite() && lambda_t >= 0.0,
        "lambda_t must be finite and non-negative"
    );
    assert!(
        lambda_t < 9.0e15,
        "lambda_t {lambda_t} too large for a convergent Poisson series"
    );
    assert!(tol > 0.0 && tol < 1.0, "tol must be in (0, 1)");
    if lambda_t == 0.0 {
        return PoissonWeights { weights: vec![1.0] };
    }
    // Unnormalized weights relative to the mode: u_m = 1, extended in both
    // directions until the terms are negligible. Normalizing by the total
    // sum stands in for the e^{-λt} factor that would underflow for large
    // λt.
    let mode = lambda_t.floor();
    let mut right_terms: Vec<f64> = vec![1.0];
    let mut u = 1.0;
    let mut n = mode;
    loop {
        n += 1.0;
        u *= lambda_t / n;
        if u < 1e-30 {
            break;
        }
        right_terms.push(u);
    }
    let mut left_terms: Vec<f64> = Vec::new(); // mode-1 downto 0
    u = 1.0;
    n = mode;
    while n >= 1.0 {
        u *= n / lambda_t;
        if u < 1e-30 {
            break;
        }
        left_terms.push(u);
        n -= 1.0;
    }
    let total: f64 = right_terms.iter().sum::<f64>() + left_terms.iter().sum::<f64>();
    let first = mode as usize - left_terms.len();
    let mut weights = vec![0.0; first];
    weights.extend(left_terms.iter().rev().map(|w| w / total));
    weights.extend(right_terms.iter().map(|w| w / total));
    // Trim the right tail down to the integral-safe tolerance.
    let tail_tol = tol / (1.0 + lambda_t);
    let mut cum = 0.0;
    let mut keep = weights.len();
    for (i, w) in weights.iter().enumerate() {
        cum += w;
        if 1.0 - cum < tail_tol {
            keep = i + 1;
            break;
        }
    }
    weights.truncate(keep);
    PoissonWeights { weights }
}

/// A sparse CTMC: off-diagonal generator rows in CSR form plus exit
/// rates (`exit[i] = -q_ii`).
#[derive(Debug, Clone)]
pub struct Ctmc {
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    rates: Vec<f64>,
    exit: Vec<f64>,
}

/// A solved transient: the distribution at the horizon and its time
/// integral over `[0, horizon]`.
#[derive(Debug, Clone)]
pub struct TransientDistribution {
    /// `pi[s]` = P(state `s` at the horizon).
    pub pi: Vec<f64>,
    /// `integral[s]` = expected time spent in state `s` over the window.
    pub integral: Vec<f64>,
    /// Number of uniformization steps taken (diagnostic).
    pub steps: usize,
}

impl Ctmc {
    /// Builds a CTMC from explicit CSR parts.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    #[must_use]
    pub fn from_parts(
        row_ptr: Vec<usize>,
        cols: Vec<usize>,
        rates: Vec<f64>,
        exit: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), exit.len() + 1, "row_ptr/exit mismatch");
        assert_eq!(cols.len(), rates.len(), "cols/rates mismatch");
        assert_eq!(*row_ptr.last().expect("non-empty row_ptr"), cols.len());
        Ctmc {
            row_ptr,
            cols,
            rates,
            exit,
        }
    }

    /// Builds a CTMC from an explored state space.
    #[must_use]
    pub fn from_state_space(space: &StateSpace) -> Self {
        let (row_ptr, cols, rates, exit) = space.generator();
        Ctmc::from_parts(
            row_ptr.to_vec(),
            cols.to_vec(),
            rates.to_vec(),
            exit.to_vec(),
        )
    }

    /// Builds a CTMC from a state space with the states flagged in
    /// `absorbing` made absorbing (their outgoing transitions removed) —
    /// the standard first-passage transformation.
    ///
    /// # Panics
    ///
    /// Panics if `absorbing.len()` differs from the state count.
    #[must_use]
    pub fn from_state_space_absorbing(space: &StateSpace, absorbing: &[bool]) -> Self {
        assert_eq!(absorbing.len(), space.state_count(), "mask length mismatch");
        let n = space.state_count();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut rates = Vec::new();
        let mut exit = Vec::with_capacity(n);
        row_ptr.push(0);
        for (i, &is_absorbing) in absorbing.iter().enumerate() {
            if !is_absorbing {
                for (j, r) in space.transitions(i) {
                    cols.push(j);
                    rates.push(r);
                }
            }
            row_ptr.push(cols.len());
            exit.push(if is_absorbing {
                0.0
            } else {
                space.exit_rate(i)
            });
        }
        Ctmc::from_parts(row_ptr, cols, rates, exit)
    }

    /// Number of states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.exit.len()
    }

    /// One step of the uniformized DTMC: `out = v · P` with
    /// `P = I + Q/Λ`.
    fn step(&self, v: &[f64], lambda: f64, out: &mut [f64]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = v[j] * (1.0 - self.exit[j] / lambda);
        }
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[self.cols[k]] += vi * self.rates[k] / lambda;
            }
        }
    }

    /// Transient solution by uniformization: the distribution at time
    /// `horizon` and its integral over `[0, horizon]`, starting from the
    /// (sub-)distribution `initial` (a list of `(state, probability)`).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is negative/NaN or `tol` is not in `(0, 1)`.
    #[must_use]
    pub fn transient(
        &self,
        initial: &[(usize, f64)],
        horizon: f64,
        tol: f64,
    ) -> TransientDistribution {
        assert!(
            horizon.is_finite() && horizon >= 0.0,
            "horizon must be finite and non-negative"
        );
        let n = self.state_count();
        let mut v = vec![0.0; n];
        for &(s, p) in initial {
            v[s] += p;
        }
        let max_exit = self.exit.iter().cloned().fold(0.0f64, f64::max);
        if max_exit == 0.0 || horizon == 0.0 {
            // Frozen chain (or empty window): nothing moves.
            let integral = v.iter().map(|&p| p * horizon).collect();
            return TransientDistribution {
                pi: v.clone(),
                integral,
                steps: 0,
            };
        }
        // A uniformization constant strictly above the fastest exit keeps
        // a self-loop in every row of P (aperiodicity insurance, shared
        // with the steady-state power iteration).
        let lambda = max_exit * 1.02;
        let weights = poisson_weights(lambda * horizon, tol);
        let mut pi = vec![0.0; n];
        let mut integral = vec![0.0; n];
        let mut next = vec![0.0; n];
        let mut cdf = 0.0;
        let right = weights.right();
        for step in 0..=right {
            let w = weights.weight(step);
            cdf += w;
            // Survival factor for the integral: P(N(Λt) > step) / Λ.
            let tail = (1.0 - cdf).max(0.0) / lambda;
            for s in 0..n {
                pi[s] += w * v[s];
                integral[s] += tail * v[s];
            }
            if step < right {
                self.step(&v, lambda, &mut next);
                std::mem::swap(&mut v, &mut next);
            }
        }
        TransientDistribution {
            pi,
            integral,
            steps: right + 1,
        }
    }

    /// Steady-state distribution by power iteration on the uniformized
    /// DTMC, starting from `initial`. For an irreducible chain this is
    /// the unique stationary distribution; for an absorbing chain it
    /// converges to the absorption distribution reachable from
    /// `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::AnalyticUnsupported`] if the iteration has not
    /// converged to `tol` after `max_iters` steps.
    pub fn steady_state_power(
        &self,
        initial: &[(usize, f64)],
        tol: f64,
        max_iters: usize,
    ) -> Result<Vec<f64>, SanError> {
        let n = self.state_count();
        let mut v = vec![0.0; n];
        for &(s, p) in initial {
            v[s] += p;
        }
        let max_exit = self.exit.iter().cloned().fold(0.0f64, f64::max);
        if max_exit == 0.0 {
            return Ok(v);
        }
        let lambda = max_exit * 1.02;
        let mut next = vec![0.0; n];
        for _ in 0..max_iters {
            self.step(&v, lambda, &mut next);
            let delta = v
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            std::mem::swap(&mut v, &mut next);
            if delta < tol {
                let total: f64 = v.iter().sum();
                v.iter_mut().for_each(|p| *p /= total);
                return Ok(v);
            }
        }
        Err(SanError::AnalyticUnsupported {
            what: "steady state: power iteration did not converge",
        })
    }

    /// Steady-state distribution by Gauss–Seidel sweeps over `πQ = 0`
    /// (`π_j = Σ_{i≠j} π_i q_ij / exit_j`), normalized each sweep.
    /// Requires an irreducible chain — every state must have an exit.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::AnalyticUnsupported`] if a state is absorbing
    /// (the stationary equations are then underdetermined) or the sweeps
    /// have not converged to `tol` after `max_iters`.
    pub fn steady_state_gauss_seidel(
        &self,
        tol: f64,
        max_iters: usize,
    ) -> Result<Vec<f64>, SanError> {
        let n = self.state_count();
        if self.exit.contains(&0.0) {
            return Err(SanError::AnalyticUnsupported {
                what: "steady state via Gauss-Seidel on a chain with absorbing states",
            });
        }
        // Transpose to incoming lists: in_edges[j] = [(i, q_ij)].
        let mut in_edges: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                in_edges[self.cols[k]].push((i, self.rates[k]));
            }
        }
        let mut pi = vec![1.0 / n as f64; n];
        for _ in 0..max_iters {
            let mut delta = 0.0f64;
            for j in 0..n {
                let inflow: f64 = in_edges[j].iter().map(|&(i, q)| pi[i] * q).sum();
                let new = inflow / self.exit[j];
                delta = delta.max((new - pi[j]).abs());
                pi[j] = new;
            }
            let total: f64 = pi.iter().sum();
            if total > 0.0 {
                pi.iter_mut().for_each(|p| *p /= total);
            }
            if delta < tol {
                return Ok(pi);
            }
        }
        Err(SanError::AnalyticUnsupported {
            what: "steady state: Gauss-Seidel did not converge",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state failure/repair chain: q01 = 2, q10 = 3.
    fn two_state() -> Ctmc {
        Ctmc::from_parts(vec![0, 1, 2], vec![1, 0], vec![2.0, 3.0], vec![2.0, 3.0])
    }

    #[test]
    fn poisson_weights_small_mean() {
        let w = poisson_weights(0.5, 1e-12);
        assert!((w.weight(0) - (-0.5f64).exp()).abs() < 1e-12);
        assert!((w.weight(1) - 0.5 * (-0.5f64).exp()).abs() < 1e-12);
        let total: f64 = w.weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn poisson_weights_large_mean_no_underflow() {
        let w = poisson_weights(5_000.0, 1e-10);
        let total: f64 = w.weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-8, "total {total}");
        // Mass concentrates near the mode.
        assert!(w.weight(5_000) > w.weight(4_500));
        assert!(w.weight(5_000) > 1e-3);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn poisson_weights_reject_untractable_mean() {
        let _ = poisson_weights(1e16, 1e-9);
    }

    #[test]
    fn poisson_weights_zero_mean() {
        let w = poisson_weights(0.0, 1e-9);
        assert_eq!(w.weights(), &[1.0]);
    }

    #[test]
    fn transient_matches_closed_form() {
        // P(down at t) for failure rate λ=2, repair μ=3, starting up:
        // p1(t) = λ/(λ+μ) (1 − e^{-(λ+μ)t}).
        let c = two_state();
        for t in [0.1, 0.5, 2.0] {
            let sol = c.transient(&[(0, 1.0)], t, 1e-12);
            let expect = 0.4 * (1.0 - (-5.0 * t).exp());
            assert!(
                (sol.pi[1] - expect).abs() < 1e-9,
                "t={t}: {} vs {expect}",
                sol.pi[1]
            );
            assert!((sol.pi[0] + sol.pi[1] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn transient_integral_matches_closed_form() {
        // ∫ p1 = 0.4 t − 0.08 (1 − e^{-5t}).
        let c = two_state();
        let t = 1.5;
        let sol = c.transient(&[(0, 1.0)], t, 1e-12);
        let expect = 0.4 * t - 0.08 * (1.0 - (-5.0 * t).exp());
        assert!(
            (sol.integral[1] - expect).abs() < 1e-8,
            "{} vs {expect}",
            sol.integral[1]
        );
        // Integrals over both states partition the window.
        assert!((sol.integral[0] + sol.integral[1] - t).abs() < 1e-8);
    }

    #[test]
    fn steady_state_both_methods_match_closed_form() {
        let c = two_state();
        let expect = [0.6, 0.4]; // μ/(λ+μ), λ/(λ+μ)
        let power = c.steady_state_power(&[(0, 1.0)], 1e-12, 100_000).unwrap();
        let gs = c.steady_state_gauss_seidel(1e-13, 100_000).unwrap();
        for s in 0..2 {
            assert!((power[s] - expect[s]).abs() < 1e-8, "power {power:?}");
            assert!((gs[s] - expect[s]).abs() < 1e-8, "gs {gs:?}");
        }
    }

    #[test]
    fn absorbing_chain_transient_absorbs() {
        // 0 -> 1 at rate 1, state 1 absorbing.
        let c = Ctmc::from_parts(vec![0, 1, 1], vec![1], vec![1.0], vec![1.0, 0.0]);
        let sol = c.transient(&[(0, 1.0)], 3.0, 1e-12);
        assert!((sol.pi[1] - (1.0 - (-3.0f64).exp())).abs() < 1e-9);
        let gs = c.steady_state_gauss_seidel(1e-10, 1000);
        assert!(matches!(gs, Err(SanError::AnalyticUnsupported { .. })));
        let power = c.steady_state_power(&[(0, 1.0)], 1e-12, 100_000).unwrap();
        assert!((power[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn frozen_chain_is_identity() {
        let c = Ctmc::from_parts(vec![0, 0, 0], vec![], vec![], vec![0.0, 0.0]);
        let sol = c.transient(&[(1, 1.0)], 10.0, 1e-9);
        assert_eq!(sol.pi, vec![0.0, 1.0]);
        assert_eq!(sol.integral, vec![0.0, 10.0]);
        assert_eq!(sol.steps, 0);
    }
}
