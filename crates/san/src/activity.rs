//! Activities: timed and instantaneous transitions with case distributions
//! and gates.

use crate::error::SanError;
use crate::model::{Marking, PlaceId};
use diversify_des::RngStream;
use std::fmt;

/// The firing-time distribution of a timed activity.
///
/// Time-to-compromise literature commonly uses exponential (memoryless
/// exploitation), Weibull (increasing/decreasing hazard as attacker tooling
/// matures) and log-normal (heavy-tailed human-driven stages) models; all
/// are supported, plus deterministic and uniform delays for protocol and
/// scan-cycle modeling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FiringDistribution {
    /// Fires exactly `delay` after enabling.
    Deterministic {
        /// The fixed delay in seconds.
        delay: f64,
    },
    /// Exponential with the given rate λ (mean 1/λ).
    Exponential {
        /// Rate parameter λ > 0.
        rate: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound (≥ 0).
        lo: f64,
        /// Upper bound (≥ lo).
        hi: f64,
    },
    /// Weibull with shape k and scale λ.
    Weibull {
        /// Shape parameter k > 0.
        shape: f64,
        /// Scale parameter λ > 0.
        scale: f64,
    },
    /// Log-normal parameterized by the underlying normal's μ and σ.
    LogNormal {
        /// Location parameter of the underlying normal.
        mu: f64,
        /// Scale parameter (σ ≥ 0) of the underlying normal.
        sigma: f64,
    },
}

impl FiringDistribution {
    /// Samples a firing delay in seconds.
    pub fn sample(&self, rng: &mut RngStream) -> f64 {
        match *self {
            FiringDistribution::Deterministic { delay } => delay,
            FiringDistribution::Exponential { rate } => rng.exponential(rate),
            FiringDistribution::Uniform { lo, hi } => rng.uniform_range(lo, hi),
            FiringDistribution::Weibull { shape, scale } => rng.weibull(shape, scale),
            FiringDistribution::LogNormal { mu, sigma } => rng.lognormal(mu, sigma),
        }
    }

    /// The distribution's mean, used for documentation and sanity checks.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            FiringDistribution::Deterministic { delay } => delay,
            FiringDistribution::Exponential { rate } => 1.0 / rate,
            FiringDistribution::Uniform { lo, hi } => 0.5 * (lo + hi),
            FiringDistribution::Weibull { shape, scale } => {
                // λ Γ(1 + 1/k) via Stirling-free small-argument gamma:
                // use ln_gamma-quality approximation through the identity
                // Γ(1+x) = x Γ(x); for sanity checks a direct series is
                // unnecessary — delegate to the exact formula with libm.
                scale * gamma_1p(1.0 / shape)
            }
            FiringDistribution::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
        }
    }

    /// Validates parameters.
    pub(crate) fn validate(&self) -> Result<(), SanError> {
        let ok = match *self {
            FiringDistribution::Deterministic { delay } => delay.is_finite() && delay >= 0.0,
            FiringDistribution::Exponential { rate } => rate.is_finite() && rate > 0.0,
            FiringDistribution::Uniform { lo, hi } => {
                lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi
            }
            FiringDistribution::Weibull { shape, scale } => {
                shape.is_finite() && scale.is_finite() && shape > 0.0 && scale > 0.0
            }
            FiringDistribution::LogNormal { mu, sigma } => {
                mu.is_finite() && sigma.is_finite() && sigma >= 0.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(SanError::BadDistribution {
                what: "parameter out of domain (see FiringDistribution docs)",
            })
        }
    }
}

/// Γ(1 + x) for x > 0, delegating to the workspace's single Lanczos
/// implementation in `diversify-stats` (one coefficient table to
/// maintain instead of two).
fn gamma_1p(x: f64) -> f64 {
    diversify_stats::special::ln_gamma(1.0 + x).exp()
}

/// How an activity completes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActivityTiming {
    /// Completes after a sampled delay.
    Timed(FiringDistribution),
    /// Completes immediately upon enabling (zero time), with the given
    /// priority weight when several instantaneous activities are enabled
    /// simultaneously.
    Instantaneous {
        /// Selection weight among simultaneously enabled instantaneous
        /// activities.
        weight: f64,
    },
}

impl ActivityTiming {
    pub(crate) fn validate(&self) -> Result<(), SanError> {
        match self {
            ActivityTiming::Timed(d) => d.validate(),
            ActivityTiming::Instantaneous { weight } => {
                if weight.is_finite() && *weight > 0.0 {
                    Ok(())
                } else {
                    Err(SanError::BadDistribution {
                        what: "instantaneous weight must be positive",
                    })
                }
            }
        }
    }
}

/// An input gate: an arbitrary enabling predicate plus a marking update
/// applied when the owning activity fires.
///
/// Gates may optionally *declare* the places their predicate reads and
/// their effect writes. Declared sets feed the model's marking-dependency
/// index, letting the simulator re-check only the activities whose
/// enablement can actually have changed after a firing. Undeclared
/// (`None`) sets are handled conservatively: an undeclared read-set makes
/// the owning activity a dependent of every place, an undeclared
/// write-set forces a full enablement rescan after the owning activity
/// fires. Correctness never depends on the declarations — only speed.
pub struct InputGate {
    /// Enabling predicate evaluated against the current marking.
    pub predicate: Box<dyn Fn(&Marking) -> bool + Send + Sync>,
    /// Marking transformation applied on firing (before output effects).
    pub effect: Box<dyn Fn(&mut Marking) + Send + Sync>,
    /// Places the predicate reads, if declared.
    pub reads: Option<Vec<PlaceId>>,
    /// Places the effect writes, if declared.
    pub writes: Option<Vec<PlaceId>>,
}

impl fmt::Debug for InputGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("InputGate")
    }
}

/// An output gate: a marking update applied when the owning case is chosen.
pub struct OutputGate {
    /// Marking transformation applied on firing (after output arcs).
    pub effect: Box<dyn Fn(&mut Marking) + Send + Sync>,
    /// Places the effect writes, if declared (see [`InputGate`] for the
    /// conservative handling of `None`).
    pub writes: Option<Vec<PlaceId>>,
}

impl fmt::Debug for OutputGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("OutputGate")
    }
}

/// One case of an activity's case distribution: a weighted output effect.
#[derive(Debug)]
pub struct Case {
    /// Relative selection weight (normalized at firing time).
    pub weight: f64,
    /// Token additions applied when this case is selected.
    pub output_arcs: Vec<(PlaceId, u32)>,
    /// Output gates applied when this case is selected.
    pub output_gates: Vec<OutputGate>,
}

/// A SAN activity: timing, enabling structure and output cases.
#[derive(Debug)]
pub struct Activity {
    /// Human-readable activity name (unique within a model by convention).
    pub name: String,
    /// Timing semantics.
    pub timing: ActivityTiming,
    /// Token requirements consumed on firing.
    pub input_arcs: Vec<(PlaceId, u32)>,
    /// Additional enabling predicates / firing effects.
    pub input_gates: Vec<InputGate>,
    /// The case distribution (at least one case).
    pub cases: Vec<Case>,
    /// Case selection weights, gathered once at model-build time so firing
    /// never re-collects them (kept in case order).
    pub(crate) case_weights: Vec<f64>,
}

impl Activity {
    /// Whether this activity is instantaneous.
    #[must_use]
    pub fn is_instantaneous(&self) -> bool {
        matches!(self.timing, ActivityTiming::Instantaneous { .. })
    }

    /// The selection weight when instantaneous, or `None` for timed
    /// activities.
    #[must_use]
    pub fn instantaneous_weight(&self) -> Option<f64> {
        match self.timing {
            ActivityTiming::Instantaneous { weight } => Some(weight),
            ActivityTiming::Timed(_) => None,
        }
    }

    /// Case selection weights in case order (precomputed at build time).
    #[must_use]
    pub fn case_weights(&self) -> &[f64] {
        &self.case_weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_des::{RngStream, StreamId};

    fn rng() -> RngStream {
        RngStream::new(7, StreamId(0))
    }

    #[test]
    fn deterministic_sampling() {
        let d = FiringDistribution::Deterministic { delay: 2.5 };
        assert_eq!(d.sample(&mut rng()), 2.5);
        assert_eq!(d.mean(), 2.5);
    }

    #[test]
    fn exponential_sample_mean() {
        let d = FiringDistribution::Exponential { rate: 4.0 };
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert_eq!(d.mean(), 0.25);
    }

    #[test]
    fn uniform_sample_in_range() {
        let d = FiringDistribution::Uniform { lo: 1.0, hi: 3.0 };
        let mut r = rng();
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!((1.0..=3.0).contains(&s));
        }
        assert_eq!(d.mean(), 2.0);
    }

    #[test]
    fn weibull_mean_formula() {
        // k = 1 reduces to exponential: mean = scale.
        let d = FiringDistribution::Weibull {
            shape: 1.0,
            scale: 3.0,
        };
        assert!((d.mean() - 3.0).abs() < 1e-9);
        // k = 2: mean = λ √π / 2.
        let d2 = FiringDistribution::Weibull {
            shape: 2.0,
            scale: 1.0,
        };
        assert!((d2.mean() - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_mean_formula() {
        let d = FiringDistribution::LogNormal {
            mu: 0.0,
            sigma: 0.5,
        };
        assert!((d.mean() - (0.125f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FiringDistribution::Exponential { rate: 0.0 }
            .validate()
            .is_err());
        assert!(FiringDistribution::Deterministic { delay: -1.0 }
            .validate()
            .is_err());
        assert!(FiringDistribution::Uniform { lo: 3.0, hi: 1.0 }
            .validate()
            .is_err());
        assert!(FiringDistribution::Weibull {
            shape: -1.0,
            scale: 1.0
        }
        .validate()
        .is_err());
        assert!(FiringDistribution::LogNormal {
            mu: f64::NAN,
            sigma: 1.0
        }
        .validate()
        .is_err());
        assert!(ActivityTiming::Instantaneous { weight: 0.0 }
            .validate()
            .is_err());
        assert!(ActivityTiming::Instantaneous { weight: 1.0 }
            .validate()
            .is_ok());
    }

    #[test]
    fn gamma_1p_reference_points() {
        // Γ(1) = 1, Γ(2) = 1, Γ(1.5) = √π/2.
        assert!((gamma_1p(0.0_f64.max(1e-12)) - 1.0).abs() < 1e-6);
        assert!((gamma_1p(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma_1p(0.5) - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-9);
    }
}
