//! Discrete-event execution of a SAN (race policy with resampling).

use crate::activity::ActivityTiming;
use crate::error::SanError;
use crate::model::{ActivityId, Marking, SanModel};
use crate::reward::Observer;
use diversify_des::{Calendar, EventToken, RngStream, SimTime, StreamId};

/// Maximum number of instantaneous firings allowed at a single instant
/// before the simulator reports a livelock.
const INSTANTANEOUS_LIMIT: u32 = 100_000;

/// RNG stream namespaces inside one replication.
const STREAM_DELAYS: u64 = 1;
const STREAM_CASES: u64 = 2;
const STREAM_INSTANT: u64 = 3;

/// Executes one trajectory of a [`SanModel`].
///
/// Execution policy:
///
/// * **Timed activities** race: each enabled activity holds a sampled
///   completion time; the earliest fires. An activity that becomes
///   disabled loses its sample; when re-enabled it samples afresh
///   (resampling / restart memory policy, the Möbius default).
/// * **Instantaneous activities** fire before any time elapses. When
///   several are enabled at once, one is chosen with probability
///   proportional to its weight, and the cascade repeats until no
///   instantaneous activity is enabled.
/// * **Cases** are selected with probability proportional to weight at
///   firing time.
pub struct Simulator<'m> {
    model: &'m SanModel,
    marking: Marking,
    now: SimTime,
    calendar: Calendar<ActivityId>,
    scheduled: Vec<Option<EventToken>>,
    delay_rng: RngStream,
    case_rng: RngStream,
    instant_rng: RngStream,
    firings: u64,
    error: Option<SanError>,
}

impl<'m> std::fmt::Debug for Simulator<'m> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("marking", &self.marking)
            .field("firings", &self.firings)
            .finish()
    }
}

impl<'m> Simulator<'m> {
    /// Creates a simulator in the model's initial marking with the given
    /// replication seed.
    #[must_use]
    pub fn new(model: &'m SanModel, seed: u64) -> Self {
        let mut sim = Simulator {
            model,
            marking: model.initial_marking(),
            now: SimTime::ZERO,
            calendar: Calendar::new(),
            scheduled: vec![None; model.activity_count()],
            delay_rng: RngStream::new(seed, StreamId(STREAM_DELAYS)),
            case_rng: RngStream::new(seed, StreamId(STREAM_CASES)),
            instant_rng: RngStream::new(seed, StreamId(STREAM_INSTANT)),
            firings: 0,
            error: None,
        };
        sim.settle_instantaneous(&mut crate::reward::NullObserver);
        sim.reconcile_schedules();
        sim
    }

    /// The current marking.
    #[must_use]
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total activity firings so far (timed + instantaneous).
    #[must_use]
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// The first execution error encountered, if any (e.g. an
    /// instantaneous livelock).
    #[must_use]
    pub fn error(&self) -> Option<&SanError> {
        self.error.as_ref()
    }

    /// Runs until `horizon` or until no activity is enabled.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.run_until_observed(horizon, &mut crate::reward::NullObserver);
    }

    /// Runs until `horizon` (or quiescence), reporting marking changes and
    /// firings to `observer`.
    pub fn run_until_observed(&mut self, horizon: SimTime, observer: &mut dyn Observer) {
        observer.on_marking(self.now, &self.marking);
        while self.error.is_none() {
            let Some(next) = self.calendar.peek_time() else {
                // Quiescent: the marking is frozen, so transient rewards
                // over [0, horizon] are well-defined — advance the clock.
                if horizon.is_finite() {
                    self.now = self.now.max(horizon);
                }
                break;
            };
            if next > horizon {
                self.now = horizon;
                break;
            }
            let (time, activity) = self.calendar.pop().expect("peeked event exists");
            self.now = time;
            self.scheduled[activity.index()] = None;
            // The schedule reconciliation cancels stale events, so a popped
            // event is enabled unless a same-instant earlier firing just
            // disabled it — re-check for safety.
            if !self.model.is_enabled(activity, &self.marking) {
                self.reconcile_schedules();
                continue;
            }
            self.fire(activity, observer);
            self.settle_instantaneous(observer);
            self.reconcile_schedules();
            observer.on_marking(self.now, &self.marking);
        }
        observer.on_end(self.now, &self.marking);
    }

    /// Runs until `pred` holds on the marking, the horizon passes, or the
    /// network quiesces. Returns the time at which the predicate first
    /// held, if it did.
    pub fn run_until_condition<P>(&mut self, horizon: SimTime, pred: P) -> Option<SimTime>
    where
        P: Fn(&Marking) -> bool,
    {
        if pred(&self.marking) {
            return Some(self.now);
        }
        while self.error.is_none() {
            let next = self.calendar.peek_time()?;
            if next > horizon {
                self.now = horizon;
                return None;
            }
            let (time, activity) = self.calendar.pop().expect("peeked event exists");
            self.now = time;
            self.scheduled[activity.index()] = None;
            if !self.model.is_enabled(activity, &self.marking) {
                self.reconcile_schedules();
                continue;
            }
            self.fire(activity, &mut crate::reward::NullObserver);
            self.settle_instantaneous(&mut crate::reward::NullObserver);
            self.reconcile_schedules();
            if pred(&self.marking) {
                return Some(self.now);
            }
        }
        None
    }

    /// Fires one activity: consume inputs, apply gates, select a case,
    /// apply outputs.
    fn fire(&mut self, activity: ActivityId, observer: &mut dyn Observer) {
        let a = self.model.activity(activity);
        for &(p, n) in &a.input_arcs {
            self.marking.remove_tokens(p, n);
        }
        for g in &a.input_gates {
            (g.effect)(&mut self.marking);
        }
        let case_idx = if a.cases.len() == 1 {
            0
        } else {
            let weights: Vec<f64> = a.cases.iter().map(|c| c.weight).collect();
            self.case_rng.discrete(&weights)
        };
        let case = &a.cases[case_idx];
        for &(p, n) in &case.output_arcs {
            self.marking.add_tokens(p, n);
        }
        for g in &case.output_gates {
            (g.effect)(&mut self.marking);
        }
        self.firings += 1;
        observer.on_fire(self.now, activity, case_idx, &self.marking);
    }

    /// Fires enabled instantaneous activities until none remain (or the
    /// livelock limit trips).
    fn settle_instantaneous(&mut self, observer: &mut dyn Observer) {
        let mut count = 0u32;
        loop {
            let enabled: Vec<ActivityId> = (0..self.model.activity_count())
                .map(ActivityId)
                .filter(|&id| {
                    self.model.activity(id).is_instantaneous()
                        && self.model.is_enabled(id, &self.marking)
                })
                .collect();
            if enabled.is_empty() {
                return;
            }
            count += 1;
            if count > INSTANTANEOUS_LIMIT {
                self.error = Some(SanError::InstantaneousLivelock {
                    limit: INSTANTANEOUS_LIMIT,
                });
                return;
            }
            let chosen = if enabled.len() == 1 {
                enabled[0]
            } else {
                let weights: Vec<f64> = enabled
                    .iter()
                    .map(|&id| match self.model.activity(id).timing {
                        ActivityTiming::Instantaneous { weight } => weight,
                        ActivityTiming::Timed(_) => unreachable!("filtered to instantaneous"),
                    })
                    .collect();
                enabled[self.instant_rng.discrete(&weights)]
            };
            self.fire(chosen, observer);
        }
    }

    /// Brings the timed-activity schedule in line with the current
    /// marking: cancel disabled, sample newly enabled.
    fn reconcile_schedules(&mut self) {
        for idx in 0..self.model.activity_count() {
            let id = ActivityId(idx);
            let a = self.model.activity(id);
            let ActivityTiming::Timed(dist) = &a.timing else {
                continue;
            };
            let enabled = self.model.is_enabled(id, &self.marking);
            match (enabled, self.scheduled[idx]) {
                (true, None) => {
                    let delay = dist.sample(&mut self.delay_rng);
                    let token = self.calendar.push(self.now + SimTime::from_secs(delay), id);
                    self.scheduled[idx] = Some(token);
                }
                (false, Some(token)) => {
                    self.calendar.cancel(token);
                    self.scheduled[idx] = None;
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::FiringDistribution;
    use crate::builder::SanBuilder;

    /// initial --activate--> activated --escalate--> root
    fn chain_model() -> SanModel {
        let mut b = SanBuilder::new();
        let initial = b.place("initial", 1);
        let activated = b.place("activated", 0);
        let root = b.place("root", 0);
        b.timed_activity("activate", FiringDistribution::Deterministic { delay: 1.0 })
            .input_arc(initial, 1)
            .output_arc(activated, 1)
            .build();
        b.timed_activity("escalate", FiringDistribution::Deterministic { delay: 2.0 })
            .input_arc(activated, 1)
            .output_arc(root, 1)
            .build();
        b.build().unwrap()
    }

    #[test]
    fn deterministic_chain_completes_at_three_seconds() {
        let model = chain_model();
        let mut sim = Simulator::new(&model, 1);
        let root = model.place_by_name("root").unwrap();
        let t = sim.run_until_condition(SimTime::from_secs(100.0), |m| m.tokens(root) == 1);
        assert_eq!(t, Some(SimTime::from_secs(3.0)));
        assert_eq!(sim.firings(), 2);
    }

    #[test]
    fn quiescence_advances_clock_to_horizon() {
        let model = chain_model();
        let mut sim = Simulator::new(&model, 1);
        sim.run_until(SimTime::from_secs(1e9));
        // After both firings nothing is enabled; the transient window still
        // extends to the horizon.
        assert_eq!(sim.now(), SimTime::from_secs(1e9));
        assert_eq!(sim.firings(), 2);
    }

    #[test]
    fn horizon_cuts_run_short() {
        let model = chain_model();
        let mut sim = Simulator::new(&model, 1);
        sim.run_until(SimTime::from_secs(1.5));
        let activated = model.place_by_name("activated").unwrap();
        let root = model.place_by_name("root").unwrap();
        assert_eq!(sim.marking().tokens(activated), 1);
        assert_eq!(sim.marking().tokens(root), 0);
        assert_eq!(sim.now(), SimTime::from_secs(1.5));
    }

    #[test]
    fn case_distribution_frequencies() {
        // One activity with a 0.8/0.2 case split, repeated via a self-loop.
        let mut b = SanBuilder::new();
        let tok = b.place("tok", 1);
        let heads = b.place("heads", 0);
        let tails = b.place("tails", 0);
        b.timed_activity("flip", FiringDistribution::Deterministic { delay: 1.0 })
            .input_arc(tok, 1)
            .case(0.8, vec![(heads, 1), (tok, 1)])
            .case(0.2, vec![(tails, 1), (tok, 1)])
            .build();
        let model = b.build().unwrap();
        let mut sim = Simulator::new(&model, 99);
        sim.run_until(SimTime::from_secs(10_000.5));
        let h = sim.marking().tokens(heads) as f64;
        let t = sim.marking().tokens(tails) as f64;
        let frac = h / (h + t);
        assert!((frac - 0.8).abs() < 0.02, "heads fraction {frac}");
    }

    #[test]
    fn instantaneous_cascade_fires_at_time_zero() {
        let mut b = SanBuilder::new();
        let a = b.place("a", 1);
        let c = b.place("c", 0);
        let d = b.place("d", 0);
        b.instantaneous_activity("i1")
            .input_arc(a, 1)
            .output_arc(c, 1)
            .build();
        b.instantaneous_activity("i2")
            .input_arc(c, 1)
            .output_arc(d, 1)
            .build();
        let model = b.build().unwrap();
        let sim = Simulator::new(&model, 5);
        assert_eq!(sim.marking().tokens(d), 1);
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.firings(), 2);
    }

    #[test]
    fn instantaneous_livelock_detected() {
        // i: a -> a, always enabled: classic zero-time loop.
        let mut b = SanBuilder::new();
        let a = b.place("a", 1);
        b.instantaneous_activity("loop")
            .input_arc(a, 1)
            .output_arc(a, 1)
            .build();
        let model = b.build().unwrap();
        let sim = Simulator::new(&model, 5);
        assert!(matches!(
            sim.error(),
            Some(SanError::InstantaneousLivelock { .. })
        ));
    }

    #[test]
    fn disabled_activity_is_cancelled() {
        // Two activities compete for one token; only one fires.
        let mut b = SanBuilder::new();
        let src = b.place("src", 1);
        let fast = b.place("fast", 0);
        let slow = b.place("slow", 0);
        b.timed_activity("f", FiringDistribution::Deterministic { delay: 1.0 })
            .input_arc(src, 1)
            .output_arc(fast, 1)
            .build();
        b.timed_activity("s", FiringDistribution::Deterministic { delay: 2.0 })
            .input_arc(src, 1)
            .output_arc(slow, 1)
            .build();
        let model = b.build().unwrap();
        let mut sim = Simulator::new(&model, 1);
        sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(sim.marking().tokens(fast), 1);
        assert_eq!(sim.marking().tokens(slow), 0);
        assert_eq!(sim.firings(), 1);
    }

    #[test]
    fn exponential_race_probabilities() {
        // Two exponential activities racing for a token: P(fast wins) =
        // λf / (λf + λs) = 3/(3+1) = 0.75. Token regenerates so the race
        // repeats.
        let mut b = SanBuilder::new();
        let src = b.place("src", 1);
        let fwin = b.place("fwin", 0);
        let swin = b.place("swin", 0);
        b.timed_activity("f", FiringDistribution::Exponential { rate: 3.0 })
            .input_arc(src, 1)
            .output_arc(fwin, 1)
            .output_arc(src, 1)
            .build();
        b.timed_activity("s", FiringDistribution::Exponential { rate: 1.0 })
            .input_arc(src, 1)
            .output_arc(swin, 1)
            .output_arc(src, 1)
            .build();
        let model = b.build().unwrap();
        let mut sim = Simulator::new(&model, 7);
        sim.run_until(SimTime::from_secs(5000.0));
        let f = sim.marking().tokens(fwin) as f64;
        let s = sim.marking().tokens(swin) as f64;
        let frac = f / (f + s);
        assert!((frac - 0.75).abs() < 0.02, "fast fraction {frac}");
    }

    #[test]
    fn reproducible_per_seed() {
        let model = chain_model();
        let run = |seed: u64| {
            let mut sim = Simulator::new(&model, seed);
            sim.run_until(SimTime::from_secs(100.0));
            (sim.now(), sim.firings())
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn gate_effects_apply_on_fire() {
        // Input gate consumes *all* tokens of a place on firing.
        let mut b = SanBuilder::new();
        let pool = b.place("pool", 7);
        let done = b.place("done", 0);
        b.timed_activity("drain", FiringDistribution::Deterministic { delay: 1.0 })
            .input_gate(move |m| m.tokens(pool) > 0, move |m| m.set_tokens(pool, 0))
            .output_arc(done, 1)
            .build();
        let model = b.build().unwrap();
        let mut sim = Simulator::new(&model, 1);
        sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(sim.marking().tokens(pool), 0);
        assert_eq!(sim.marking().tokens(done), 1);
    }
}
