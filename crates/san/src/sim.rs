//! Discrete-event execution of a SAN (race policy with resampling).
//!
//! Two interchangeable engines share one firing semantics:
//!
//! * [`Engine::Incremental`] (the default) consults the model's
//!   marking-dependency index so each event re-checks only the activities
//!   whose enablement can actually have changed, and runs with zero heap
//!   allocations in the steady state (scratch buffers are reused, case
//!   weights are precomputed at model build).
//! * [`Engine::FullRescan`] re-derives enablement for every activity
//!   after every event — the original O(activities)-per-event reference
//!   implementation, kept so differential tests can prove the incremental
//!   bookkeeping reproduces it event for event.
//!
//! Both engines draw from the same RNG streams in the same order, so a
//! given `(model, seed)` pair produces bit-identical trajectories under
//! either engine.

use crate::activity::ActivityTiming;
use crate::error::SanError;
use crate::model::{ActivityId, Marking, SanModel};
use crate::reward::Observer;
use diversify_des::{Calendar, EventToken, RngStream, SimTime, StreamId};

/// Maximum number of instantaneous firings allowed at a single instant
/// before the simulator reports a livelock.
const INSTANTANEOUS_LIMIT: u32 = 100_000;

/// RNG stream namespaces inside one replication.
const STREAM_DELAYS: u64 = 1;
const STREAM_CASES: u64 = 2;
const STREAM_INSTANT: u64 = 3;

/// Enablement-tracking strategy of a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Dependency-indexed incremental enablement tracking (fast path).
    #[default]
    Incremental,
    /// Full O(activities) rescan after every event (reference engine for
    /// differential testing).
    FullRescan,
}

/// Executes one trajectory of a [`SanModel`].
///
/// Execution policy:
///
/// * **Timed activities** race: each enabled activity holds a sampled
///   completion time; the earliest fires. An activity that becomes
///   disabled loses its sample; when re-enabled it samples afresh
///   (resampling / restart memory policy, the Möbius default).
/// * **Instantaneous activities** fire before any time elapses. When
///   several are enabled at once, one is chosen with probability
///   proportional to its weight, and the cascade repeats until no
///   instantaneous activity is enabled.
/// * **Cases** are selected with probability proportional to weight at
///   firing time.
pub struct Simulator<'m> {
    model: &'m SanModel,
    st: SimState,
    now: SimTime,
    delay_rng: RngStream,
    case_rng: RngStream,
    instant_rng: RngStream,
    firings: u64,
    error: Option<SanError>,
    engine: Engine,
}

/// The recyclable per-replication state of a [`Simulator`]: the marking,
/// the event calendar, the activity schedule and every incremental-engine
/// scratch buffer — everything that owns heap memory.
///
/// A Monte-Carlo loop creates one `SimState` per worker and threads it
/// through its replications:
///
/// ```
/// use diversify_san::{FiringDistribution, SanBuilder, SimState, Simulator, Engine};
/// use diversify_des::SimTime;
///
/// let mut b = SanBuilder::new();
/// let up = b.place("up", 1);
/// let down = b.place("down", 0);
/// b.timed_activity("fail", FiringDistribution::Exponential { rate: 1.0 })
///     .input_arc(up, 1)
///     .output_arc(down, 1)
///     .build();
/// let model = b.build().unwrap();
///
/// let mut state = SimState::new(&model);
/// for seed in 0..100 {
///     let mut sim = Simulator::with_state(&model, seed, Engine::default(), state);
///     sim.run_until(SimTime::from_secs(10.0));
///     state = sim.into_state(); // buffers survive for the next seed
/// }
/// ```
///
/// [`SimState::reset`] (called by [`Simulator::with_state`]) clears the
/// buffers without releasing their capacity, so after the first
/// replication over a given model the steady state allocates nothing
/// (`tests/zero_alloc.rs` asserts this).
pub struct SimState {
    marking: Marking,
    calendar: Calendar<ActivityId>,
    scheduled: Vec<Option<EventToken>>,
    // ---- incremental-engine state (scratch reused across events) ----
    /// Places written since the last schedule reconciliation (deduped via
    /// `place_stamp`).
    touched_places: Vec<usize>,
    /// Per-place stamp; a place is in `touched_places` iff its stamp
    /// equals `stamp_gen`.
    place_stamp: Vec<u64>,
    /// Per-activity stamp for deduping the affected set.
    act_stamp: Vec<u64>,
    /// Current reconciliation cycle; bumped instead of clearing stamps.
    stamp_gen: u64,
    /// Set when a firing's write-set is unknown: the next reconciliation
    /// falls back to a full rescan.
    touched_all: bool,
    /// Timed activities to re-check at the next reconciliation (sorted
    /// before use so RNG draws happen in activity-index order).
    affected: Vec<usize>,
    /// Per-activity flag: instantaneous and enabled in the current
    /// marking. Maintained eagerly after every firing.
    instant_enabled: Vec<bool>,
    /// Scratch: enabled instantaneous activity indices, in index order.
    enabled_buf: Vec<usize>,
    /// Scratch: their selection weights.
    weights_buf: Vec<f64>,
}

impl std::fmt::Debug for SimState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimState")
            .field("marking", &self.marking)
            .field("pending_events", &self.calendar.len())
            .finish()
    }
}

impl SimState {
    /// State sized for `model`, in its initial marking.
    #[must_use]
    pub fn new(model: &SanModel) -> Self {
        let mut st = SimState {
            marking: Marking::new(Vec::new()),
            calendar: Calendar::new(),
            scheduled: Vec::new(),
            touched_places: Vec::with_capacity(model.place_count()),
            place_stamp: Vec::new(),
            act_stamp: Vec::new(),
            stamp_gen: 1,
            touched_all: true,
            affected: Vec::with_capacity(model.activity_count()),
            instant_enabled: Vec::new(),
            enabled_buf: Vec::new(),
            weights_buf: Vec::new(),
        };
        st.reset(model);
        st
    }

    /// Returns the state to `model`'s initial marking with an empty
    /// calendar and fresh scratch, reusing every buffer. After the state
    /// has been sized for a model once, resetting for that model (or any
    /// model no larger) allocates nothing.
    pub fn reset(&mut self, model: &SanModel) {
        let na = model.activity_count();
        let np = model.place_count();
        model.copy_initial_marking(&mut self.marking);
        self.calendar.clear();
        self.scheduled.clear();
        self.scheduled.resize(na, None);
        self.touched_places.clear();
        self.place_stamp.clear();
        self.place_stamp.resize(np, 0);
        self.act_stamp.clear();
        self.act_stamp.resize(na, 0);
        self.stamp_gen = 1;
        self.touched_all = true; // the initial marking "touches" everything
        self.affected.clear();
        self.instant_enabled.clear();
        self.instant_enabled.resize(na, false);
        self.enabled_buf.clear();
        self.weights_buf.clear();
    }
}

impl<'m> std::fmt::Debug for Simulator<'m> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("marking", &self.st.marking)
            .field("firings", &self.firings)
            .field("engine", &self.engine)
            .finish()
    }
}

impl<'m> Simulator<'m> {
    /// Creates a simulator in the model's initial marking with the given
    /// replication seed, on the default incremental engine.
    #[must_use]
    pub fn new(model: &'m SanModel, seed: u64) -> Self {
        Simulator::with_engine(model, seed, Engine::default())
    }

    /// Creates a simulator on an explicit [`Engine`].
    #[must_use]
    pub fn with_engine(model: &'m SanModel, seed: u64, engine: Engine) -> Self {
        Simulator::with_state(model, seed, engine, SimState::new(model))
    }

    /// Creates a simulator that recycles `state` — the workspace-reuse
    /// entry point for replication loops. The state is [`reset`] for
    /// `model`, so trajectories are bit-identical to a simulator built
    /// by [`Simulator::with_engine`]; only the allocations differ.
    /// Reclaim the state with [`Simulator::into_state`] when the
    /// replication is done.
    ///
    /// [`reset`]: SimState::reset
    #[must_use]
    pub fn with_state(model: &'m SanModel, seed: u64, engine: Engine, mut state: SimState) -> Self {
        state.reset(model);
        let mut sim = Simulator {
            model,
            st: state,
            now: SimTime::ZERO,
            delay_rng: RngStream::new(seed, StreamId(STREAM_DELAYS)),
            case_rng: RngStream::new(seed, StreamId(STREAM_CASES)),
            instant_rng: RngStream::new(seed, StreamId(STREAM_INSTANT)),
            firings: 0,
            error: None,
            engine,
        };
        sim.refresh_all_instant();
        sim.settle_instantaneous(&mut crate::reward::NullObserver);
        sim.reconcile_schedules(None);
        sim
    }

    /// Consumes the simulator, handing its [`SimState`] back for reuse by
    /// the next replication.
    #[must_use]
    pub fn into_state(self) -> SimState {
        self.st
    }

    /// The engine this simulator runs on.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The current marking.
    #[must_use]
    pub fn marking(&self) -> &Marking {
        &self.st.marking
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total activity firings so far (timed + instantaneous).
    #[must_use]
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// The first execution error encountered, if any (e.g. an
    /// instantaneous livelock).
    #[must_use]
    pub fn error(&self) -> Option<&SanError> {
        self.error.as_ref()
    }

    /// Runs until `horizon` or until no activity is enabled.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.run_until_observed(horizon, &mut crate::reward::NullObserver);
    }

    /// Runs until `horizon` (or quiescence), reporting marking changes and
    /// firings to `observer`.
    pub fn run_until_observed(&mut self, horizon: SimTime, observer: &mut dyn Observer) {
        observer.on_marking(self.now, &self.st.marking);
        while self.error.is_none() {
            let Some(next) = self.st.calendar.peek_time() else {
                // Quiescent: the marking is frozen, so transient rewards
                // over [0, horizon] are well-defined — advance the clock.
                if horizon.is_finite() {
                    self.now = self.now.max(horizon);
                }
                break;
            };
            if next > horizon {
                self.now = horizon;
                break;
            }
            let (time, activity) = self.st.calendar.pop().expect("peeked event exists");
            self.now = time;
            self.st.scheduled[activity.index()] = None;
            // The schedule reconciliation cancels stale events, so a popped
            // event is enabled unless a same-instant earlier firing just
            // disabled it — re-check for safety.
            if !self.model.is_enabled(activity, &self.st.marking) {
                self.reconcile_schedules(Some(activity.index()));
                continue;
            }
            self.fire(activity, observer);
            self.settle_instantaneous(observer);
            self.reconcile_schedules(Some(activity.index()));
            observer.on_marking(self.now, &self.st.marking);
        }
        observer.on_end(self.now, &self.st.marking);
    }

    /// Runs until `pred` holds on the marking, the horizon passes, or the
    /// network quiesces. Returns the time at which the predicate first
    /// held, if it did.
    pub fn run_until_condition<P>(&mut self, horizon: SimTime, pred: P) -> Option<SimTime>
    where
        P: Fn(&Marking) -> bool,
    {
        if pred(&self.st.marking) {
            return Some(self.now);
        }
        while self.error.is_none() {
            let next = self.st.calendar.peek_time()?;
            if next > horizon {
                self.now = horizon;
                return None;
            }
            let (time, activity) = self.st.calendar.pop().expect("peeked event exists");
            self.now = time;
            self.st.scheduled[activity.index()] = None;
            if !self.model.is_enabled(activity, &self.st.marking) {
                self.reconcile_schedules(Some(activity.index()));
                continue;
            }
            self.fire(activity, &mut crate::reward::NullObserver);
            self.settle_instantaneous(&mut crate::reward::NullObserver);
            self.reconcile_schedules(Some(activity.index()));
            if pred(&self.st.marking) {
                return Some(self.now);
            }
        }
        None
    }

    /// Fires one activity: consume inputs, apply gates, select a case,
    /// apply outputs. Allocation-free: case weights come from the model's
    /// precomputed table and touched-place bookkeeping reuses scratch.
    fn fire(&mut self, activity: ActivityId, observer: &mut dyn Observer) {
        let model = self.model;
        let a = model.activity(activity);
        for &(p, n) in &a.input_arcs {
            self.st.marking.remove_tokens(p, n);
        }
        for g in &a.input_gates {
            (g.effect)(&mut self.st.marking);
        }
        let case_idx = if a.cases.len() == 1 {
            0
        } else {
            self.case_rng.discrete(a.case_weights())
        };
        let case = &a.cases[case_idx];
        for &(p, n) in &case.output_arcs {
            self.st.marking.add_tokens(p, n);
        }
        for g in &case.output_gates {
            (g.effect)(&mut self.st.marking);
        }
        self.firings += 1;
        if self.engine == Engine::Incremental {
            self.record_fire_effects(activity, case_idx);
        }
        observer.on_fire(self.now, activity, case_idx, &self.st.marking);
    }

    /// Incremental bookkeeping after a firing: accumulate the written
    /// places for the next schedule reconciliation and refresh the
    /// enablement flags of the instantaneous activities that read them.
    fn record_fire_effects(&mut self, activity: ActivityId, case_idx: usize) {
        let model = self.model;
        if model.index.writes_unknown[activity.index()] {
            self.st.touched_all = true;
            self.refresh_all_instant();
            return;
        }
        for &p in &model.index.touched[activity.index()][case_idx] {
            let pi = p.index();
            if self.st.place_stamp[pi] != self.st.stamp_gen {
                self.st.place_stamp[pi] = self.st.stamp_gen;
                self.st.touched_places.push(pi);
            }
            for &a in &model.index.instant_dependents[pi] {
                self.st.instant_enabled[a.index()] = model.is_enabled(a, &self.st.marking);
            }
        }
        for &a in &model.index.global_instant {
            self.st.instant_enabled[a.index()] = model.is_enabled(a, &self.st.marking);
        }
    }

    /// Recomputes every instantaneous activity's enablement flag.
    fn refresh_all_instant(&mut self) {
        let model = self.model;
        for &a in &model.index.instantaneous {
            self.st.instant_enabled[a.index()] = model.is_enabled(a, &self.st.marking);
        }
    }

    /// Fires enabled instantaneous activities until none remain (or the
    /// livelock limit trips).
    fn settle_instantaneous(&mut self, observer: &mut dyn Observer) {
        match self.engine {
            Engine::Incremental => self.settle_incremental(observer),
            Engine::FullRescan => self.settle_full(observer),
        }
    }

    fn settle_incremental(&mut self, observer: &mut dyn Observer) {
        let model = self.model;
        let mut count = 0u32;
        loop {
            // The maintained flags make each cascade step O(instantaneous
            // activities) instead of O(all activities); index order is
            // preserved so weighted selection draws match the reference
            // engine exactly.
            self.st.enabled_buf.clear();
            for &a in &model.index.instantaneous {
                if self.st.instant_enabled[a.index()] {
                    self.st.enabled_buf.push(a.index());
                }
            }
            if self.st.enabled_buf.is_empty() {
                return;
            }
            count += 1;
            if count > INSTANTANEOUS_LIMIT {
                self.error = Some(SanError::InstantaneousLivelock {
                    limit: INSTANTANEOUS_LIMIT,
                });
                return;
            }
            let chosen = if self.st.enabled_buf.len() == 1 {
                self.st.enabled_buf[0]
            } else {
                self.st.weights_buf.clear();
                for &i in &self.st.enabled_buf {
                    self.st.weights_buf.push(
                        model
                            .activity(ActivityId(i))
                            .instantaneous_weight()
                            .expect("enabled_buf holds instantaneous activities"),
                    );
                }
                self.st.enabled_buf[self.instant_rng.discrete(&self.st.weights_buf)]
            };
            self.fire(ActivityId(chosen), observer);
        }
    }

    fn settle_full(&mut self, observer: &mut dyn Observer) {
        let mut count = 0u32;
        loop {
            let enabled: Vec<ActivityId> = (0..self.model.activity_count())
                .map(ActivityId)
                .filter(|&id| {
                    self.model.activity(id).is_instantaneous()
                        && self.model.is_enabled(id, &self.st.marking)
                })
                .collect();
            if enabled.is_empty() {
                return;
            }
            count += 1;
            if count > INSTANTANEOUS_LIMIT {
                self.error = Some(SanError::InstantaneousLivelock {
                    limit: INSTANTANEOUS_LIMIT,
                });
                return;
            }
            let chosen = if enabled.len() == 1 {
                enabled[0]
            } else {
                let weights: Vec<f64> = enabled
                    .iter()
                    .map(|&id| match self.model.activity(id).timing {
                        ActivityTiming::Instantaneous { weight } => weight,
                        ActivityTiming::Timed(_) => unreachable!("filtered to instantaneous"),
                    })
                    .collect();
                enabled[self.instant_rng.discrete(&weights)]
            };
            self.fire(chosen, observer);
        }
    }

    /// Brings the timed-activity schedule in line with the current
    /// marking: cancel disabled, sample newly enabled. `fired` is the
    /// timed activity that was just popped from the calendar (its slot
    /// was cleared, so it must be re-checked even if its own inputs were
    /// untouched).
    fn reconcile_schedules(&mut self, fired: Option<usize>) {
        match self.engine {
            Engine::FullRescan => self.reconcile_full(),
            Engine::Incremental => self.reconcile_incremental(fired),
        }
    }

    fn reconcile_incremental(&mut self, fired: Option<usize>) {
        if self.st.touched_all {
            self.reconcile_full();
            self.end_cycle();
            return;
        }
        let model = self.model;
        debug_assert!(self.st.affected.is_empty());
        if let Some(idx) = fired {
            self.mark_affected(idx);
        }
        for ti in 0..self.st.touched_places.len() {
            let p = self.st.touched_places[ti];
            for &a in &model.index.timed_dependents[p] {
                self.mark_affected(a.index());
            }
        }
        for &a in &model.index.global_timed {
            self.mark_affected(a.index());
        }
        // Activity-index order keeps the delay-RNG draw schedule identical
        // to the full-rescan engine: the set of activities that transition
        // to "newly enabled" is the same, and both engines sample them in
        // ascending index order.
        self.st.affected.sort_unstable();
        for ai in 0..self.st.affected.len() {
            self.reconcile_one(self.st.affected[ai]);
        }
        self.end_cycle();
    }

    fn reconcile_full(&mut self) {
        for idx in 0..self.model.activity_count() {
            self.reconcile_one(idx);
        }
    }

    fn reconcile_one(&mut self, idx: usize) {
        let model = self.model;
        let id = ActivityId(idx);
        let a = model.activity(id);
        let ActivityTiming::Timed(dist) = &a.timing else {
            return;
        };
        let enabled = model.is_enabled(id, &self.st.marking);
        match (enabled, self.st.scheduled[idx]) {
            (true, None) => {
                let delay = dist.sample(&mut self.delay_rng);
                let token = self
                    .st
                    .calendar
                    .push(self.now + SimTime::from_secs(delay), id);
                self.st.scheduled[idx] = Some(token);
            }
            (false, Some(token)) => {
                self.st.calendar.cancel(token);
                self.st.scheduled[idx] = None;
            }
            _ => {}
        }
    }

    fn mark_affected(&mut self, idx: usize) {
        if self.st.act_stamp[idx] != self.st.stamp_gen {
            self.st.act_stamp[idx] = self.st.stamp_gen;
            self.st.affected.push(idx);
        }
    }

    /// Resets the per-cycle accumulation after a reconciliation. Bumping
    /// the generation invalidates all stamps in O(1).
    fn end_cycle(&mut self) {
        self.st.touched_places.clear();
        self.st.affected.clear();
        self.st.touched_all = false;
        self.st.stamp_gen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::FiringDistribution;
    use crate::builder::SanBuilder;

    /// initial --activate--> activated --escalate--> root
    fn chain_model() -> SanModel {
        let mut b = SanBuilder::new();
        let initial = b.place("initial", 1);
        let activated = b.place("activated", 0);
        let root = b.place("root", 0);
        b.timed_activity("activate", FiringDistribution::Deterministic { delay: 1.0 })
            .input_arc(initial, 1)
            .output_arc(activated, 1)
            .build();
        b.timed_activity("escalate", FiringDistribution::Deterministic { delay: 2.0 })
            .input_arc(activated, 1)
            .output_arc(root, 1)
            .build();
        b.build().unwrap()
    }

    #[test]
    fn deterministic_chain_completes_at_three_seconds() {
        let model = chain_model();
        let mut sim = Simulator::new(&model, 1);
        let root = model.place_by_name("root").unwrap();
        let t = sim.run_until_condition(SimTime::from_secs(100.0), |m| m.tokens(root) == 1);
        assert_eq!(t, Some(SimTime::from_secs(3.0)));
        assert_eq!(sim.firings(), 2);
    }

    #[test]
    fn quiescence_advances_clock_to_horizon() {
        let model = chain_model();
        let mut sim = Simulator::new(&model, 1);
        sim.run_until(SimTime::from_secs(1e9));
        // After both firings nothing is enabled; the transient window still
        // extends to the horizon.
        assert_eq!(sim.now(), SimTime::from_secs(1e9));
        assert_eq!(sim.firings(), 2);
    }

    #[test]
    fn horizon_cuts_run_short() {
        let model = chain_model();
        let mut sim = Simulator::new(&model, 1);
        sim.run_until(SimTime::from_secs(1.5));
        let activated = model.place_by_name("activated").unwrap();
        let root = model.place_by_name("root").unwrap();
        assert_eq!(sim.marking().tokens(activated), 1);
        assert_eq!(sim.marking().tokens(root), 0);
        assert_eq!(sim.now(), SimTime::from_secs(1.5));
    }

    #[test]
    fn case_distribution_frequencies() {
        // One activity with a 0.8/0.2 case split, repeated via a self-loop.
        let mut b = SanBuilder::new();
        let tok = b.place("tok", 1);
        let heads = b.place("heads", 0);
        let tails = b.place("tails", 0);
        b.timed_activity("flip", FiringDistribution::Deterministic { delay: 1.0 })
            .input_arc(tok, 1)
            .case(0.8, vec![(heads, 1), (tok, 1)])
            .case(0.2, vec![(tails, 1), (tok, 1)])
            .build();
        let model = b.build().unwrap();
        let mut sim = Simulator::new(&model, 99);
        sim.run_until(SimTime::from_secs(10_000.5));
        let h = sim.marking().tokens(heads) as f64;
        let t = sim.marking().tokens(tails) as f64;
        let frac = h / (h + t);
        assert!((frac - 0.8).abs() < 0.02, "heads fraction {frac}");
    }

    #[test]
    fn instantaneous_cascade_fires_at_time_zero() {
        let mut b = SanBuilder::new();
        let a = b.place("a", 1);
        let c = b.place("c", 0);
        let d = b.place("d", 0);
        b.instantaneous_activity("i1")
            .input_arc(a, 1)
            .output_arc(c, 1)
            .build();
        b.instantaneous_activity("i2")
            .input_arc(c, 1)
            .output_arc(d, 1)
            .build();
        let model = b.build().unwrap();
        let sim = Simulator::new(&model, 5);
        assert_eq!(sim.marking().tokens(d), 1);
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.firings(), 2);
    }

    #[test]
    fn instantaneous_livelock_detected() {
        // i: a -> a, always enabled: classic zero-time loop.
        let mut b = SanBuilder::new();
        let a = b.place("a", 1);
        b.instantaneous_activity("loop")
            .input_arc(a, 1)
            .output_arc(a, 1)
            .build();
        let model = b.build().unwrap();
        let sim = Simulator::new(&model, 5);
        assert!(matches!(
            sim.error(),
            Some(SanError::InstantaneousLivelock { .. })
        ));
    }

    #[test]
    fn disabled_activity_is_cancelled() {
        // Two activities compete for one token; only one fires.
        let mut b = SanBuilder::new();
        let src = b.place("src", 1);
        let fast = b.place("fast", 0);
        let slow = b.place("slow", 0);
        b.timed_activity("f", FiringDistribution::Deterministic { delay: 1.0 })
            .input_arc(src, 1)
            .output_arc(fast, 1)
            .build();
        b.timed_activity("s", FiringDistribution::Deterministic { delay: 2.0 })
            .input_arc(src, 1)
            .output_arc(slow, 1)
            .build();
        let model = b.build().unwrap();
        let mut sim = Simulator::new(&model, 1);
        sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(sim.marking().tokens(fast), 1);
        assert_eq!(sim.marking().tokens(slow), 0);
        assert_eq!(sim.firings(), 1);
    }

    #[test]
    fn exponential_race_probabilities() {
        // Two exponential activities racing for a token: P(fast wins) =
        // λf / (λf + λs) = 3/(3+1) = 0.75. Token regenerates so the race
        // repeats.
        let mut b = SanBuilder::new();
        let src = b.place("src", 1);
        let fwin = b.place("fwin", 0);
        let swin = b.place("swin", 0);
        b.timed_activity("f", FiringDistribution::Exponential { rate: 3.0 })
            .input_arc(src, 1)
            .output_arc(fwin, 1)
            .output_arc(src, 1)
            .build();
        b.timed_activity("s", FiringDistribution::Exponential { rate: 1.0 })
            .input_arc(src, 1)
            .output_arc(swin, 1)
            .output_arc(src, 1)
            .build();
        let model = b.build().unwrap();
        let mut sim = Simulator::new(&model, 7);
        sim.run_until(SimTime::from_secs(5000.0));
        let f = sim.marking().tokens(fwin) as f64;
        let s = sim.marking().tokens(swin) as f64;
        let frac = f / (f + s);
        assert!((frac - 0.75).abs() < 0.02, "fast fraction {frac}");
    }

    #[test]
    fn reproducible_per_seed() {
        let model = chain_model();
        let run = |seed: u64| {
            let mut sim = Simulator::new(&model, seed);
            sim.run_until(SimTime::from_secs(100.0));
            (sim.now(), sim.firings())
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn gate_effects_apply_on_fire() {
        // Input gate consumes *all* tokens of a place on firing.
        let mut b = SanBuilder::new();
        let pool = b.place("pool", 7);
        let done = b.place("done", 0);
        b.timed_activity("drain", FiringDistribution::Deterministic { delay: 1.0 })
            .input_gate(move |m| m.tokens(pool) > 0, move |m| m.set_tokens(pool, 0))
            .output_arc(done, 1)
            .build();
        let model = b.build().unwrap();
        let mut sim = Simulator::new(&model, 1);
        sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(sim.marking().tokens(pool), 0);
        assert_eq!(sim.marking().tokens(done), 1);
    }

    #[test]
    fn declared_gate_effects_apply_on_fire() {
        // Same drain model, with declared read/write sets: the incremental
        // engine must handle it without conservative fallbacks.
        let mut b = SanBuilder::new();
        let pool = b.place("pool", 7);
        let done = b.place("done", 0);
        b.timed_activity("drain", FiringDistribution::Deterministic { delay: 1.0 })
            .input_gate_declared(
                vec![pool],
                vec![pool],
                move |m| m.tokens(pool) > 0,
                move |m| m.set_tokens(pool, 0),
            )
            .output_arc(done, 1)
            .build();
        let model = b.build().unwrap();
        let drain = model.activity_by_name("drain").unwrap();
        assert!(!model.firing_writes_unknown(drain));
        assert_eq!(model.timed_dependents_of(pool), &[drain]);
        let mut sim = Simulator::new(&model, 1);
        sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(sim.marking().tokens(pool), 0);
        assert_eq!(sim.marking().tokens(done), 1);
    }

    /// Records `(time, activity, case)` per firing plus final state.
    #[derive(Default)]
    struct Trace {
        events: Vec<(SimTime, usize, usize)>,
    }

    impl Observer for Trace {
        fn on_fire(&mut self, now: SimTime, activity: ActivityId, case: usize, _m: &Marking) {
            self.events.push((now, activity.index(), case));
        }
    }

    /// `(events, final marking, firings, errored)`.
    type Trajectory = (Vec<(SimTime, usize, usize)>, Vec<u32>, u64, bool);

    fn trajectory(model: &SanModel, seed: u64, engine: Engine) -> Trajectory {
        let mut sim = Simulator::with_engine(model, seed, engine);
        let mut trace = Trace::default();
        sim.run_until_observed(SimTime::from_secs(500.0), &mut trace);
        (
            trace.events,
            sim.marking().as_slice().to_vec(),
            sim.firings(),
            sim.error().is_some(),
        )
    }

    fn assert_engines_agree(model: &SanModel, seeds: std::ops::Range<u64>) {
        for seed in seeds {
            let inc = trajectory(model, seed, Engine::Incremental);
            let full = trajectory(model, seed, Engine::FullRescan);
            assert_eq!(inc, full, "trajectories diverged at seed {seed}");
        }
    }

    #[test]
    fn engines_agree_on_races_and_cases() {
        let mut b = SanBuilder::new();
        let src = b.place("src", 2);
        let a = b.place("a", 0);
        let c = b.place("c", 0);
        b.timed_activity("f", FiringDistribution::Exponential { rate: 3.0 })
            .input_arc(src, 1)
            .case(0.6, vec![(a, 1), (src, 1)])
            .case(0.4, vec![(c, 1)])
            .build();
        b.timed_activity("s", FiringDistribution::Exponential { rate: 1.0 })
            .input_arc(src, 1)
            .output_arc(c, 1)
            .output_arc(src, 1)
            .build();
        b.timed_activity("refill", FiringDistribution::Uniform { lo: 0.5, hi: 2.0 })
            .input_arc(c, 2)
            .output_arc(src, 1)
            .build();
        let model = b.build().unwrap();
        assert_engines_agree(&model, 0..25);
    }

    #[test]
    fn engines_agree_with_instantaneous_cascades() {
        let mut b = SanBuilder::new();
        let fuel = b.place("fuel", 30);
        let stage = b.place("stage", 0);
        let out_a = b.place("out_a", 0);
        let out_b = b.place("out_b", 0);
        b.timed_activity("pump", FiringDistribution::Exponential { rate: 2.0 })
            .input_arc(fuel, 1)
            .output_arc(stage, 1)
            .build();
        b.instantaneous_activity("route_a")
            .input_arc(stage, 1)
            .output_arc(out_a, 1)
            .build();
        b.instantaneous_activity("route_b")
            .input_arc(stage, 1)
            .output_arc(out_b, 1)
            .build();
        let model = b.build().unwrap();
        assert_engines_agree(&model, 0..25);
    }

    #[test]
    fn engines_agree_with_undeclared_gates() {
        // Undeclared gate reads/writes force the conservative path: the
        // incremental engine must still match the reference exactly.
        let mut b = SanBuilder::new();
        let pool = b.place("pool", 5);
        let busy = b.place("busy", 0);
        let done = b.place("done", 0);
        b.timed_activity("grab", FiringDistribution::Exponential { rate: 1.5 })
            .input_gate(
                move |m| m.tokens(pool) > 0 && m.tokens(busy) == 0,
                move |m| {
                    m.remove_tokens(pool, 1);
                    m.add_tokens(busy, 1);
                },
            )
            .build();
        b.timed_activity("finish", FiringDistribution::Exponential { rate: 4.0 })
            .input_arc(busy, 1)
            .output_arc(done, 1)
            .build();
        let model = b.build().unwrap();
        assert_engines_agree(&model, 0..25);
    }

    #[test]
    fn source_activity_without_inputs_keeps_firing() {
        // An always-enabled timed source has an empty read-set: the fired
        // activity itself must still be rescheduled after each firing.
        let mut b = SanBuilder::new();
        let sink = b.place("sink", 0);
        b.timed_activity("tick", FiringDistribution::Deterministic { delay: 1.0 })
            .output_arc(sink, 1)
            .build();
        let model = b.build().unwrap();
        let mut sim = Simulator::new(&model, 3);
        sim.run_until(SimTime::from_secs(10.5));
        assert_eq!(sim.marking().tokens(sink), 10);
    }
}
