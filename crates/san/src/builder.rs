//! Fluent construction of SAN models.

use crate::activity::{Activity, ActivityTiming, Case, FiringDistribution, InputGate, OutputGate};
use crate::error::SanError;
use crate::model::{Marking, PlaceId, SanModel};
use std::fmt;

/// Builder for [`SanModel`].
///
/// # Examples
///
/// See the crate-level documentation for a two-stage attack model.
#[derive(Default)]
pub struct SanBuilder {
    place_names: Vec<String>,
    initial: Vec<u32>,
    activities: Vec<Activity>,
}

impl fmt::Debug for SanBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SanBuilder")
            .field("places", &self.place_names.len())
            .field("activities", &self.activities.len())
            .finish()
    }
}

impl SanBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        SanBuilder::default()
    }

    /// Adds a place with an initial token count and returns its id.
    pub fn place(&mut self, name: impl Into<String>, initial_tokens: u32) -> PlaceId {
        self.place_names.push(name.into());
        self.initial.push(initial_tokens);
        PlaceId(self.place_names.len() - 1)
    }

    /// Starts a timed activity definition.
    pub fn timed_activity(
        &mut self,
        name: impl Into<String>,
        dist: FiringDistribution,
    ) -> ActivityBuilder<'_> {
        ActivityBuilder::new(self, name.into(), ActivityTiming::Timed(dist))
    }

    /// Starts an instantaneous activity definition with selection weight 1.
    pub fn instantaneous_activity(&mut self, name: impl Into<String>) -> ActivityBuilder<'_> {
        ActivityBuilder::new(
            self,
            name.into(),
            ActivityTiming::Instantaneous { weight: 1.0 },
        )
    }

    /// Finalizes and validates the model.
    ///
    /// # Errors
    ///
    /// Returns a [`SanError`] describing the first structural problem
    /// found (no activities, dangling place references, bad case weights,
    /// invalid distribution parameters).
    pub fn build(self) -> Result<SanModel, SanError> {
        SanModel::from_parts(self.place_names, self.initial, self.activities)
    }
}

/// Builder for one activity; obtained from [`SanBuilder::timed_activity`]
/// or [`SanBuilder::instantaneous_activity`].
///
/// An activity accumulates input arcs/gates and either simple output arcs
/// (which become a single implicit case) or explicit weighted cases.
pub struct ActivityBuilder<'a> {
    parent: &'a mut SanBuilder,
    name: String,
    timing: ActivityTiming,
    input_arcs: Vec<(PlaceId, u32)>,
    input_gates: Vec<InputGate>,
    default_case_arcs: Vec<(PlaceId, u32)>,
    default_case_gates: Vec<OutputGate>,
    cases: Vec<Case>,
}

impl<'a> fmt::Debug for ActivityBuilder<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActivityBuilder")
            .field("name", &self.name)
            .finish()
    }
}

impl<'a> ActivityBuilder<'a> {
    fn new(parent: &'a mut SanBuilder, name: String, timing: ActivityTiming) -> Self {
        ActivityBuilder {
            parent,
            name,
            timing,
            input_arcs: Vec::new(),
            input_gates: Vec::new(),
            default_case_arcs: Vec::new(),
            default_case_gates: Vec::new(),
            cases: Vec::new(),
        }
    }

    /// Adds an input arc consuming `tokens` from `place`.
    #[must_use]
    pub fn input_arc(mut self, place: PlaceId, tokens: u32) -> Self {
        self.input_arcs.push((place, tokens));
        self
    }

    /// Adds an input gate with an enabling `predicate` and a firing
    /// `effect`.
    ///
    /// The gate's read and write sets are left undeclared, so the
    /// simulator treats the owning activity conservatively (re-checked
    /// after every firing, and every firing of this activity triggers a
    /// full enablement rescan). Prefer [`Self::input_gate_declared`] on
    /// models that matter for performance.
    #[must_use]
    pub fn input_gate<P, E>(mut self, predicate: P, effect: E) -> Self
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
        E: Fn(&mut Marking) + Send + Sync + 'static,
    {
        self.input_gates.push(InputGate {
            predicate: Box::new(predicate),
            effect: Box::new(effect),
            reads: None,
            writes: None,
        });
        self
    }

    /// Adds an input gate with declared read and write sets: `reads` must
    /// cover every place the predicate inspects, `writes` every place the
    /// effect can modify. The declaration feeds the marking-dependency
    /// index; an under-declared set silently breaks incremental enablement
    /// tracking, so declare a superset when in doubt.
    #[must_use]
    pub fn input_gate_declared<P, E>(
        mut self,
        reads: Vec<PlaceId>,
        writes: Vec<PlaceId>,
        predicate: P,
        effect: E,
    ) -> Self
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
        E: Fn(&mut Marking) + Send + Sync + 'static,
    {
        self.input_gates.push(InputGate {
            predicate: Box::new(predicate),
            effect: Box::new(effect),
            reads: Some(reads),
            writes: Some(writes),
        });
        self
    }

    /// Adds an enabling-only input gate (no marking effect on firing).
    /// The read set is undeclared; the (empty) write set is declared.
    #[must_use]
    pub fn guard<P>(mut self, predicate: P) -> Self
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        self.input_gates.push(InputGate {
            predicate: Box::new(predicate),
            effect: Box::new(|_| {}),
            reads: None,
            writes: Some(Vec::new()),
        });
        self
    }

    /// Adds an enabling-only input gate whose predicate reads exactly the
    /// declared places (no marking effect on firing).
    #[must_use]
    pub fn guard_reading<P>(mut self, reads: Vec<PlaceId>, predicate: P) -> Self
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        self.input_gates.push(InputGate {
            predicate: Box::new(predicate),
            effect: Box::new(|_| {}),
            reads: Some(reads),
            writes: Some(Vec::new()),
        });
        self
    }

    /// Adds an output arc to the implicit default case.
    #[must_use]
    pub fn output_arc(mut self, place: PlaceId, tokens: u32) -> Self {
        self.default_case_arcs.push((place, tokens));
        self
    }

    /// Adds an output gate to the implicit default case. The write set is
    /// undeclared (conservative); see [`Self::output_gate_writing`].
    #[must_use]
    pub fn output_gate<E>(mut self, effect: E) -> Self
    where
        E: Fn(&mut Marking) + Send + Sync + 'static,
    {
        self.default_case_gates.push(OutputGate {
            effect: Box::new(effect),
            writes: None,
        });
        self
    }

    /// Adds an output gate with a declared write set to the implicit
    /// default case: `writes` must cover every place the effect can
    /// modify.
    #[must_use]
    pub fn output_gate_writing<E>(mut self, writes: Vec<PlaceId>, effect: E) -> Self
    where
        E: Fn(&mut Marking) + Send + Sync + 'static,
    {
        self.default_case_gates.push(OutputGate {
            effect: Box::new(effect),
            writes: Some(writes),
        });
        self
    }

    /// Adds an explicit weighted case with output arcs.
    #[must_use]
    pub fn case(mut self, weight: f64, output_arcs: Vec<(PlaceId, u32)>) -> Self {
        self.cases.push(Case {
            weight,
            output_arcs,
            output_gates: Vec::new(),
        });
        self
    }

    /// Adds an explicit weighted case whose effect is a gate function with
    /// an undeclared (conservative) write set.
    #[must_use]
    pub fn case_with_gate<E>(mut self, weight: f64, effect: E) -> Self
    where
        E: Fn(&mut Marking) + Send + Sync + 'static,
    {
        self.cases.push(Case {
            weight,
            output_arcs: Vec::new(),
            output_gates: vec![OutputGate {
                effect: Box::new(effect),
                writes: None,
            }],
        });
        self
    }

    /// Adds an explicit weighted case whose effect is a gate function with
    /// a declared write set.
    #[must_use]
    pub fn case_writing<E>(mut self, weight: f64, writes: Vec<PlaceId>, effect: E) -> Self
    where
        E: Fn(&mut Marking) + Send + Sync + 'static,
    {
        self.cases.push(Case {
            weight,
            output_arcs: Vec::new(),
            output_gates: vec![OutputGate {
                effect: Box::new(effect),
                writes: Some(writes),
            }],
        });
        self
    }

    /// Finalizes the activity and registers it with the parent builder.
    ///
    /// If no explicit cases were added, the accumulated output arcs/gates
    /// become a single case with weight 1 (an activity with no outputs at
    /// all becomes a pure sink).
    pub fn build(self) {
        let mut cases = self.cases;
        if cases.is_empty() {
            cases.push(Case {
                weight: 1.0,
                output_arcs: self.default_case_arcs,
                output_gates: self.default_case_gates,
            });
        } else {
            debug_assert!(
                self.default_case_arcs.is_empty() && self.default_case_gates.is_empty(),
                "activity '{}' mixes explicit cases with default-case outputs",
                self.name
            );
        }
        self.parent.activities.push(Activity {
            name: self.name,
            timing: self.timing,
            input_arcs: self.input_arcs,
            input_gates: self.input_gates,
            cases,
            case_weights: Vec::new(), // filled by SanModel::from_parts
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_chain() {
        let mut b = SanBuilder::new();
        let p = b.place("a", 1);
        let q = b.place("b", 0);
        b.timed_activity("t", FiringDistribution::Exponential { rate: 1.0 })
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build();
        let m = b.build().unwrap();
        assert_eq!(m.place_count(), 2);
        assert_eq!(m.activity_count(), 1);
        assert_eq!(m.initial_marking().tokens(p), 1);
    }

    #[test]
    fn explicit_cases_are_kept() {
        let mut b = SanBuilder::new();
        let p = b.place("src", 1);
        let ok = b.place("ok", 0);
        let fail = b.place("fail", 0);
        b.timed_activity("try", FiringDistribution::Exponential { rate: 1.0 })
            .input_arc(p, 1)
            .case(0.7, vec![(ok, 1)])
            .case(0.3, vec![(fail, 1)])
            .build();
        let m = b.build().unwrap();
        let a = m.activity_by_name("try").unwrap();
        assert_eq!(m.activity(a).cases.len(), 2);
    }

    #[test]
    fn bad_case_weight_rejected() {
        let mut b = SanBuilder::new();
        let p = b.place("p", 1);
        b.timed_activity("t", FiringDistribution::Exponential { rate: 1.0 })
            .input_arc(p, 1)
            .case(-1.0, vec![])
            .build();
        assert!(matches!(b.build(), Err(SanError::BadCaseWeights { .. })));
    }

    #[test]
    fn bad_distribution_rejected() {
        let mut b = SanBuilder::new();
        let p = b.place("p", 1);
        b.timed_activity("t", FiringDistribution::Exponential { rate: -2.0 })
            .input_arc(p, 1)
            .build();
        assert!(matches!(b.build(), Err(SanError::BadDistribution { .. })));
    }

    #[test]
    fn instantaneous_activity_builds() {
        let mut b = SanBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.instantaneous_activity("now")
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build();
        let m = b.build().unwrap();
        let a = m.activity_by_name("now").unwrap();
        assert!(m.activity(a).is_instantaneous());
    }

    #[test]
    fn guard_only_gate() {
        let mut b = SanBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.timed_activity("t", FiringDistribution::Deterministic { delay: 1.0 })
            .input_arc(p, 1)
            .guard(move |m| m.tokens(q) == 0)
            .output_arc(q, 1)
            .build();
        let m = b.build().unwrap();
        let a = m.activity_by_name("t").unwrap();
        assert!(m.is_enabled(a, &m.initial_marking()));
    }
}
