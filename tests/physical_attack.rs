//! End-to-end cyber-physical integration: a simulated campaign's PLC
//! compromises are replayed against the thermal plant model.

use diversify::attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify::attack::stage::NodeCompromise;
use diversify::scada::plc::sabotage_program;
use diversify::scada::scope::{ScopeConfig, ScopeSystem};

/// Runs the cyber campaign, then injects the resulting PLC compromises
/// into the physical runtime. Returns (tripped racks, alarms active).
fn cyber_physical_run(seed: u64) -> (usize, bool) {
    let cfg = ScopeConfig::default();
    let system = ScopeSystem::build(&cfg);
    let sim = CampaignSimulator::new(
        system.network(),
        ThreatModel::stuxnet_like(),
        CampaignConfig::default(),
    );
    let outcome = sim.run(seed);
    let reprogrammed: Vec<usize> = system
        .plc_nodes()
        .iter()
        .enumerate()
        .filter(|(_, node)| outcome.final_states[node.index()] == NodeCompromise::Reprogrammed)
        .map(|(crac, _)| crac)
        .collect();

    let mut rt = ScopeSystem::build(&cfg).into_runtime();
    rt.run_for(1800.0);
    for &crac in &reprogrammed {
        rt.plc_mut(crac).install_program(sabotage_program());
        rt.sensor_mut(crac).compromise(22.0);
    }
    rt.run_for(6.0 * 3600.0);
    (rt.tripped_count(), rt.any_alarm())
}

#[test]
fn successful_campaign_causes_physical_damage_without_alarms() {
    // Find a successful campaign among a few seeds (the monoculture falls
    // almost surely, but stay robust to unlucky seeds).
    for seed in 0..10 {
        let cfg = ScopeConfig::default();
        let system = ScopeSystem::build(&cfg);
        let sim = CampaignSimulator::new(
            system.network(),
            ThreatModel::stuxnet_like(),
            CampaignConfig::default(),
        );
        if !sim.run(seed).succeeded() {
            continue;
        }
        let (tripped, alarms) = cyber_physical_run(seed);
        assert!(
            tripped > 0,
            "a successful sabotage campaign must trip racks (seed {seed})"
        );
        assert!(
            !alarms,
            "the sabotage program suppresses PLC alarms (seed {seed})"
        );
        return;
    }
    panic!("no successful campaign in 10 seeds against the monoculture");
}

#[test]
fn untouched_plant_stays_healthy() {
    let mut rt = ScopeSystem::build(&ScopeConfig::default()).into_runtime();
    rt.run_for(4.0 * 3600.0);
    assert_eq!(rt.tripped_count(), 0);
    assert!(rt.max_rack_temperature() < 45.0);
}

#[test]
fn partial_compromise_damages_proportionally() {
    let cfg = ScopeConfig::default();
    let run_with_sabotaged = |count: usize| {
        let mut rt = ScopeSystem::build(&cfg).into_runtime();
        rt.run_for(1800.0);
        for crac in 0..count {
            rt.plc_mut(crac).install_program(sabotage_program());
        }
        rt.run_for(4.0 * 3600.0);
        rt.max_rack_temperature()
    };
    let none = run_with_sabotaged(0);
    let all = run_with_sabotaged(4);
    assert!(
        all > none + 5.0,
        "full sabotage must clearly overheat: {none:.1} -> {all:.1}"
    );
}
