//! Fault-injection properties of the hardened execution layer: injected
//! panics, corrupted outputs, and budget truncation never change what
//! the surviving replications compute — serially or in parallel — and
//! deterministic retry erases transient faults completely.

// Test code: the unwrap/expect ban (clippy.toml) applies to the
// non-test library code of diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use diversify::attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify::core::exec::campaign_plan;
use diversify::core::pipeline::{Pipeline, PipelineConfig};
use diversify::core::runner::measure_configuration_budgeted;
use diversify::scada::scope::{ScopeConfig, ScopeSystem};
use diversify_des::exec::{
    accept_all, Budget, BudgetOutcome, CancelToken, Executor, FailureCause, ReplicationPlan,
    RetryPolicy, RunPolicy, VecCollector,
};
use diversify_des::faults::{silence_injected_panics, FaultKind, FaultPlan};
use diversify_des::{RngStream, StreamId};
use proptest::prelude::*;

/// Forces real worker threads even on single-core CI machines so the
/// parallel panic-isolation path is actually exercised (the rayon shim
/// honors `RAYON_NUM_THREADS` like upstream).
fn force_worker_threads() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("RAYON_NUM_THREADS", "4"));
}

/// The reference replication task: a couple of deterministic draws from
/// the replication's own seed, so any retry that replays the seed must
/// reproduce the value bit for bit.
fn draw(seed: u64) -> f64 {
    let mut rng = RngStream::new(seed, StreamId(7));
    rng.uniform() + rng.uniform()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Panics at arbitrary replication indices are isolated: every
    /// surviving replication is bit-identical to the fault-free run,
    /// failures are recorded with their indices, and the serial and
    /// parallel executors agree on all of it.
    #[test]
    fn survivors_are_bit_identical_across_faults_and_executors(
        seed in any::<u64>(),
        fault_rate in 0.0f64..0.5,
    ) {
        force_worker_threads();
        silence_injected_panics();
        let plan = ReplicationPlan::new(6, 5, seed);
        let faults = FaultPlan::seeded(
            seed ^ 0xFA17,
            plan.total(),
            fault_rate,
            &[FaultKind::Panic],
        );
        let task = |(): &mut (), rep: diversify_des::exec::Replication| draw(rep.seed);
        let clean: Vec<f64> = Executor::serial().run_ws(&plan, || (), task, &VecCollector);
        let policy = RunPolicy::new();
        let run = |executor: Executor| {
            faults.reset();
            executor.run_ws_budgeted(
                &plan,
                || (),
                faults.wrap(task, |v| v),
                &VecCollector,
                &policy,
            )
        };
        let serial = run(Executor::serial());
        let parallel = run(Executor::parallel());
        let faulted: Vec<u32> = faults.faulted().map(|(i, _)| i).collect();
        // Survivors are exactly the clean values at non-faulted indices.
        let expected: Vec<f64> = clean
            .iter()
            .enumerate()
            .filter(|(i, _)| !faulted.contains(&(*i as u32)))
            .map(|(_, v)| *v)
            .collect();
        for part in [&serial, &parallel] {
            prop_assert_eq!(part.output().unwrap_or(&Vec::new()).clone(), expected.clone());
            prop_assert_eq!(part.failed.len(), faulted.len());
            let failed_at: Vec<u32> = part.failed.iter().map(|f| f.index).collect();
            prop_assert_eq!(failed_at, faulted.clone());
            for failure in &part.failed {
                prop_assert_eq!(failure.seed, plan.seed_for(failure.index));
                prop_assert!(matches!(failure.cause, FailureCause::Panicked(_)));
            }
        }
        prop_assert_eq!(serial.completed, parallel.completed);
        prop_assert_eq!(serial.budget_outcome, parallel.budget_outcome);
    }

    /// Seed-preserving retry erases transient faults completely: the
    /// run finishes whole and bit-identical to a fault-free run,
    /// because every retried attempt replays the replication's own
    /// seed and therefore its exact draw schedule.
    #[test]
    fn retry_from_seed_reproduces_the_draw_schedule(
        seed in any::<u64>(),
        fault_rate in 0.0f64..0.6,
    ) {
        force_worker_threads();
        silence_injected_panics();
        let plan = ReplicationPlan::new(4, 5, seed);
        let faults = FaultPlan::seeded(
            seed ^ 0x7247,
            plan.total(),
            fault_rate,
            &[FaultKind::Panic],
        )
        .transient(1);
        let task = |(): &mut (), rep: diversify_des::exec::Replication| draw(rep.seed);
        let clean: Vec<f64> = Executor::serial().run_ws(&plan, || (), task, &VecCollector);
        let policy = RunPolicy::new().with_retry(RetryPolicy::retries(1));
        for executor in [Executor::serial(), Executor::parallel()] {
            faults.reset();
            let part = executor.run_ws_budgeted(
                &plan,
                || (),
                faults.wrap(task, |v| v),
                &VecCollector,
                &policy,
            );
            prop_assert!(part.failed.is_empty());
            prop_assert!(!part.is_degraded());
            prop_assert_eq!(part.completed, plan.total());
            prop_assert_eq!(part.output().unwrap().clone(), clean.clone());
        }
    }

    /// A replication budget truncates to a whole number of rounds, and
    /// the truncated run is bit-identical to the shorter fixed plan —
    /// graceful degradation never invents a third behavior.
    #[test]
    fn budget_truncation_equals_the_shorter_plan(
        seed in any::<u64>(),
        keep_rounds in 1u32..5,
    ) {
        force_worker_threads();
        let long = ReplicationPlan::new(5, 4, seed);
        let short = ReplicationPlan::new(keep_rounds, 4, seed);
        let task = |(): &mut (), rep: diversify_des::exec::Replication| draw(rep.seed);
        let policy = RunPolicy::new()
            .with_budget(Budget::unlimited().with_max_replications(keep_rounds * 4));
        for executor in [Executor::serial(), Executor::parallel()] {
            let part = executor.run_ws_budgeted(&long, || (), task, &VecCollector, &policy);
            let full: Vec<f64> = executor.run_ws(&short, || (), task, &VecCollector);
            prop_assert_eq!(part.budget_outcome, BudgetOutcome::ReplicationBudget);
            prop_assert_eq!(part.rounds, keep_rounds);
            prop_assert_eq!(part.output().unwrap().clone(), full);
        }
    }
}

/// Campaign-level fault tolerance: corrupted campaign outcomes (NaN
/// compromised ratio) are rejected by the validator and recorded as
/// `InvalidOutput`, while every surviving outcome matches the plain
/// (unhardened) campaign run bit for bit.
#[test]
fn corrupted_campaign_outcomes_are_quarantined() {
    force_worker_threads();
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let sim = CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
    let plan = ReplicationPlan::flat(20, 0xBAD_CA5E);
    let clean = sim.run_plan(&plan, Executor::serial());
    let faults = FaultPlan::none(plan.total())
        .with_fault(3, FaultKind::CorruptOutput)
        .with_fault(11, FaultKind::CorruptOutput);
    let policy = RunPolicy::new();
    let part = Executor::serial().run_ws_checked(
        &plan,
        || (),
        faults.wrap(
            |(): &mut (), rep| sim.run(rep.seed),
            |mut outcome| {
                outcome.compromised_ratio.push(f64::NAN);
                outcome
            },
        ),
        &VecCollector,
        &policy,
        |outcome: &diversify::attack::campaign::CampaignOutcome| outcome.stats().is_finite(),
    );
    assert_eq!(part.failed.len(), 2);
    assert!(part
        .failed
        .iter()
        .all(|f| f.cause == FailureCause::InvalidOutput));
    assert_eq!(
        part.failed.iter().map(|f| f.index).collect::<Vec<_>>(),
        vec![3, 11]
    );
    let survivors = part.output().expect("18 replications survived");
    assert_eq!(survivors.len(), 18);
    for (kept, original) in survivors.iter().zip(
        clean
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3 && *i != 11)
            .map(|(_, o)| o),
    ) {
        assert_eq!(kept.time_to_attack, original.time_to_attack);
        assert_eq!(
            kept.final_compromised_ratio(),
            original.final_compromised_ratio()
        );
    }
}

/// Cooperative cancellation at the measurement layer: a pre-cancelled
/// token yields an empty partial result, and cancelling after the fact
/// never corrupts the accumulated prefix (it is bit-identical to the
/// fixed plan of the completed rounds).
#[test]
fn cancellation_degrades_to_a_clean_prefix() {
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let threat = ThreatModel::stuxnet_like();
    let config = CampaignConfig {
        max_ticks: 24 * 7,
        detection_stops_attack: false,
    };
    let plan = campaign_plan(4, 5, 0xC0FFEE);
    let token = CancelToken::new();
    token.cancel();
    let policy = RunPolicy::new().with_budget(Budget::unlimited().with_cancel(&token));
    let part =
        measure_configuration_budgeted(&net, &threat, config, &plan, Executor::serial(), &policy);
    assert_eq!(part.budget_outcome, BudgetOutcome::Cancelled);
    assert_eq!(part.completed, 0);
    assert!(part.measurements.is_none());
    assert!(part.is_degraded());
}

/// End-to-end resilience: a resilient pipeline under a per-cell
/// replication budget still produces a full report whose health table
/// flags every truncated cell.
#[test]
fn resilient_pipeline_flags_degraded_cells_end_to_end() {
    force_worker_threads();
    let config = PipelineConfig {
        batches: 3,
        batch_size: 4,
        campaign: CampaignConfig {
            max_ticks: 24 * 5,
            detection_stops_attack: false,
        },
        resilience: Some(
            RunPolicy::new().with_budget(Budget::unlimited().with_max_replications(8)),
        ),
        ..PipelineConfig::default()
    };
    let report = Pipeline::new(config).run();
    let health = report.doe.health.as_ref().expect("resilient sweep");
    assert_eq!(health.len(), 16);
    assert!(report.doe.is_degraded());
    for cell in health {
        assert_eq!(cell.budget_outcome, BudgetOutcome::ReplicationBudget);
        assert_eq!(cell.completed, 8);
        assert!(cell.is_degraded());
    }
    let text = report.to_string();
    assert!(text.contains("cell health"));
    assert!(text.contains("16 of 16 degraded"));
    assert!(text.contains("DEGRADED"));
    // The degraded sweep still supports the full assessment.
    assert_eq!(report.assessment.ranking.len(), 6);
}

/// `accept_all` really is the identity validator: the checked path with
/// it equals the plain budgeted path.
#[test]
fn accept_all_matches_unchecked_path() {
    let plan = ReplicationPlan::new(3, 4, 99);
    let task = |(): &mut (), rep: diversify_des::exec::Replication| draw(rep.seed);
    let policy = RunPolicy::new();
    let a = Executor::serial().run_ws_budgeted(&plan, || (), task, &VecCollector, &policy);
    let b = Executor::serial().run_ws_checked(
        &plan,
        || (),
        task,
        &VecCollector,
        &policy,
        accept_all::<f64>,
    );
    assert_eq!(a.output(), b.output());
    assert_eq!(a.completed, b.completed);
}
