//! Differential tests of the SAN execution engines: the dependency-indexed
//! incremental engine must reproduce the full-rescan reference engine's
//! trajectory *event for event* — same `(time, activity, case)` firing
//! sequence, same final marking, same error state — on randomized models,
//! on gate-heavy conservative models, and on the SCoPE-derived campaign
//! SAN. Both engines share RNG streams by construction; these tests pin
//! that guarantee against regressions.

// Test code: the unwrap/expect ban (clippy.toml) applies to the
// non-test library code of diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use diversify::attack::campaign::ThreatModel;
use diversify::attack::to_san::compile_network_campaign;
use diversify::san::{
    ActivityId, Engine, FiringDistribution, Marking, Observer, PlaceId, SanBuilder, SanModel,
    Simulator,
};
use diversify::scada::scope::{ScopeConfig, ScopeSystem};
use diversify_des::{RngStream, SimTime, StreamId};
use proptest::prelude::*;

/// Records every firing as `(time, activity index, case index)`.
#[derive(Default)]
struct Trace {
    events: Vec<(SimTime, usize, usize)>,
}

impl Observer for Trace {
    fn on_fire(&mut self, now: SimTime, activity: ActivityId, case: usize, _m: &Marking) {
        self.events.push((now, activity.index(), case));
    }
}

type Trajectory = (Vec<(SimTime, usize, usize)>, Vec<u32>, u64, bool);

fn trajectory(model: &SanModel, seed: u64, engine: Engine, horizon: f64) -> Trajectory {
    let mut sim = Simulator::with_engine(model, seed, engine);
    let mut trace = Trace::default();
    sim.run_until_observed(SimTime::from_secs(horizon), &mut trace);
    (
        trace.events,
        sim.marking().as_slice().to_vec(),
        sim.firings(),
        sim.error().is_some(),
    )
}

fn assert_engines_agree(model: &SanModel, seed: u64, horizon: f64) {
    let inc = trajectory(model, seed, Engine::Incremental, horizon);
    let full = trajectory(model, seed, Engine::FullRescan, horizon);
    assert_eq!(
        inc.0.len(),
        full.0.len(),
        "event counts diverged at seed {seed}"
    );
    assert_eq!(inc, full, "trajectories diverged at seed {seed}");
}

/// Builds a random SAN: 3–7 places, 3–10 activities mixing timed and
/// instantaneous timing, multi-token arcs, weighted cases, declared and
/// undeclared gates. Instantaneous activities route tokens strictly
/// "upward" (to higher place indices) so cascades always terminate.
fn random_model(model_seed: u64) -> SanModel {
    let mut rng = RngStream::new(model_seed, StreamId(0xD1FF));
    let np = 3 + rng.index(5);
    let mut b = SanBuilder::new();
    let places: Vec<PlaceId> = (0..np)
        .map(|i| b.place(format!("p{i}"), rng.index(4) as u32))
        .collect();
    let na = 3 + rng.index(8);
    for ai in 0..na {
        if rng.bernoulli(0.3) {
            // Instantaneous: src -> dst with dst strictly above src.
            let src = rng.index(np - 1);
            let dst = src + 1 + rng.index(np - src - 1);
            b.instantaneous_activity(format!("i{ai}"))
                .input_arc(places[src], 1)
                .output_arc(places[dst], 1)
                .build();
            continue;
        }
        let dist = match rng.index(3) {
            0 => FiringDistribution::Exponential {
                rate: 0.5 + rng.uniform() * 3.0,
            },
            1 => FiringDistribution::Deterministic {
                delay: 0.1 + rng.uniform(),
            },
            _ => FiringDistribution::Uniform {
                lo: 0.1,
                hi: 0.2 + rng.uniform() * 2.0,
            },
        };
        let src = places[rng.index(np)];
        let mut ab = b
            .timed_activity(format!("t{ai}"), dist)
            .input_arc(src, 1 + rng.index(2) as u32);
        if rng.bernoulli(0.35) {
            // Declared guard: exercises the dependency index.
            let gp = places[rng.index(np)];
            let lim = 1 + rng.index(6) as u32;
            ab = ab.guard_reading(vec![gp], move |m| m.tokens(gp) <= lim);
        } else if rng.bernoulli(0.25) {
            // Undeclared guard: exercises the conservative global path.
            let gp = places[rng.index(np)];
            let lim = 1 + rng.index(6) as u32;
            ab = ab.guard(move |m| m.tokens(gp) <= lim);
        }
        if rng.bernoulli(0.4) {
            // Two weighted cases.
            let case = |rng: &mut RngStream, b: &[PlaceId]| -> Vec<(PlaceId, u32)> {
                (0..1 + rng.index(2))
                    .map(|_| (b[rng.index(b.len())], 1))
                    .collect()
            };
            let (w1, w2) = (0.2 + rng.uniform(), 0.2 + rng.uniform());
            let c1 = case(&mut rng, &places);
            let c2 = case(&mut rng, &places);
            ab.case(w1, c1).case(w2, c2).build();
        } else {
            let dst = places[rng.index(np)];
            ab.output_arc(dst, 1).build();
        }
    }
    b.build().expect("randomized model is structurally valid")
}

#[test]
fn randomized_models_event_for_event() {
    for model_seed in 0..40u64 {
        let model = random_model(model_seed);
        for run_seed in 0..3u64 {
            assert_engines_agree(&model, run_seed.wrapping_mul(7) + model_seed, 200.0);
        }
    }
}

#[test]
fn scope_campaign_san_event_for_event() {
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    for threat in [
        ThreatModel::stuxnet_like(),
        ThreatModel::duqu_like(),
        ThreatModel::flame_like(),
    ] {
        let san = compile_network_campaign(&net, &threat).expect("compiles");
        for seed in 0..8u64 {
            assert_engines_agree(&san.model, seed, 24.0 * 90.0);
        }
    }
}

#[test]
fn conservative_gate_model_event_for_event() {
    // A model where every enablement runs through undeclared gates, so
    // the incremental engine lives entirely on its conservative fallback
    // paths (global dependents + touched-all rescans).
    let mut b = SanBuilder::new();
    let pool = b.place("pool", 6);
    let busy = b.place("busy", 0);
    let done = b.place("done", 0);
    b.timed_activity("grab", FiringDistribution::Exponential { rate: 2.0 })
        .input_gate(
            move |m| m.tokens(pool) > 0 && m.tokens(busy) < 2,
            move |m| {
                m.remove_tokens(pool, 1);
                m.add_tokens(busy, 1);
            },
        )
        .build();
    b.timed_activity("finish", FiringDistribution::Exponential { rate: 3.0 })
        .input_arc(busy, 1)
        .output_gate(move |m| m.add_tokens(done, 1))
        .build();
    b.instantaneous_activity("recycle")
        .input_arc(done, 3)
        .output_arc(pool, 2)
        .build();
    let model = b.build().unwrap();
    for seed in 0..20u64 {
        assert_engines_agree(&model, seed, 300.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property: for random models and replication seeds, the incremental
    /// and full-rescan engines produce identical `(time, activity, case)`
    /// firing sequences and final markings.
    #[test]
    fn prop_incremental_matches_full_rescan(
        model_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let model = random_model(model_seed);
        let inc = trajectory(&model, run_seed, Engine::Incremental, 150.0);
        let full = trajectory(&model, run_seed, Engine::FullRescan, 150.0);
        prop_assert_eq!(inc, full);
    }
}
