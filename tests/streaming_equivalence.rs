//! Property tests for the streaming estimation path: streaming moments
//! must match their batch (stored-slice) counterparts under arbitrary
//! merge splits, and adaptive executor runs truncated at N replications
//! must be bit-identical to fixed plans of N.

// Test code: the unwrap/expect ban (clippy.toml) applies to the
// non-test library code of diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use diversify::des::exec::{Executor, MeanCollector, ReplicationPlan, StopRule};
use diversify::des::{ReplicationRunner, RngStream, StreamId};
use diversify::stats::{BernoulliCounter, StreamingSummary, Summary};
use proptest::prelude::*;

/// Folds `data` into one accumulator through the segment boundaries in
/// `cuts` (arbitrary split positions), merging the partial accumulators
/// in order.
fn merged_through_splits(data: &[f64], cuts: &[usize]) -> StreamingSummary {
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (data.len() + 1)).collect();
    bounds.push(0);
    bounds.push(data.len());
    bounds.sort_unstable();
    let mut acc = StreamingSummary::new();
    for pair in bounds.windows(2) {
        let segment: StreamingSummary = data[pair[0]..pair[1]].iter().copied().collect();
        acc.merge(&segment);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming moments match the stored-slice summary to 1e-12, for
    /// every way of splitting the sample into merged sub-accumulators.
    #[test]
    fn streaming_summary_matches_batch_summary(
        data in prop::collection::vec(-1.0f64..1.0, 1..200),
        cuts in prop::collection::vec(0usize..256, 0..6),
    ) {
        let batch = Summary::from_slice(&data).expect("non-empty finite sample");
        let streamed = merged_through_splits(&data, &cuts);
        prop_assert_eq!(streamed.count() as usize, batch.count());
        prop_assert!((streamed.mean() - batch.mean()).abs() < 1e-12);
        prop_assert!((streamed.sample_sd() - batch.sd()).abs() < 1e-12);
        prop_assert_eq!(streamed.min(), batch.min());
        prop_assert_eq!(streamed.max(), batch.max());
    }

    /// The Bernoulli counter is exactly the count pair under any split.
    #[test]
    fn bernoulli_counter_matches_counts(
        outcomes in prop::collection::vec(any::<bool>(), 1..200),
        cut in 0usize..256,
    ) {
        let cut = cut % (outcomes.len() + 1);
        let mut merged: BernoulliCounter = outcomes[..cut].iter().copied().collect();
        let tail: BernoulliCounter = outcomes[cut..].iter().copied().collect();
        merged.merge(&tail);
        prop_assert_eq!(merged.trials() as usize, outcomes.len());
        prop_assert_eq!(
            merged.successes() as usize,
            outcomes.iter().filter(|&&b| b).count()
        );
    }

    /// An adaptive run that executes R rounds is bit-identical to the
    /// fixed plan of R batches — on both executors, for any batch size
    /// and master seed.
    #[test]
    fn adaptive_truncation_is_bit_identical_to_fixed_plan(
        master in any::<u64>(),
        batch in 1u32..8,
        rounds in 1u32..6,
        draws in 1u32..20,
    ) {
        let base = ReplicationPlan::new(1, batch, master);
        // A target no Monte-Carlo run meets: the run executes exactly
        // its replication cap, i.e. `rounds` rounds.
        let rule = StopRule::relative(1e-15, 1, batch * rounds);
        let task = |rep: diversify::des::Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(7));
            (0..draws).map(|_| rng.uniform()).sum::<f64>() / f64::from(draws)
        };
        let fixed_plan = base.with_batches(rounds);
        let fixed = Executor::serial().collect(&fixed_plan, task, &MeanCollector);
        for exec in [Executor::serial(), Executor::parallel()] {
            let adaptive = exec.run_adaptive(&base, &rule, task, &MeanCollector, |_, _| None);
            prop_assert_eq!(adaptive.rounds, rounds);
            prop_assert_eq!(adaptive.replications, batch * rounds);
            prop_assert_eq!(adaptive.plan, fixed_plan);
            prop_assert!(!adaptive.target_met);
            prop_assert_eq!(adaptive.output.to_bits(), fixed.to_bits());
        }
    }

    /// The metrics fold of the replication harness is scheduling- and
    /// batching-invariant: a batched plan equals the flat plan of the
    /// same replications, bit for bit, because the Welford merge follows
    /// the executor's fixed per-round fold shape.
    #[test]
    fn metrics_fold_matches_across_executors(
        master in any::<u64>(),
        replications in 2u32..40,
    ) {
        let experiment = |seed: u64| {
            let mut rng = RngStream::new(seed, StreamId(3));
            vec![("x".to_string(), rng.uniform()), ("y".to_string(), rng.exponential(2.0))]
        };
        let serial = ReplicationRunner::new(master, replications)
            .with_executor(Executor::serial())
            .run(experiment);
        let parallel = ReplicationRunner::new(master, replications)
            .with_executor(Executor::parallel())
            .run(experiment);
        for name in ["x", "y"] {
            let (s, p) = (
                serial.metric(name).expect("metric present"),
                parallel.metric(name).expect("metric present"),
            );
            prop_assert_eq!(s.count(), p.count());
            prop_assert_eq!(s.mean().to_bits(), p.mean().to_bits());
            prop_assert_eq!(s.sample_variance().to_bits(), p.sample_variance().to_bits());
        }
    }
}
