//! Cross-crate guarantees of the workspace-reuse layer: running a plan
//! through `Executor::run_ws` (per-worker workspaces, buffers recycled
//! across replications) is bit-identical to the materializing
//! `Executor::run`/`collect` path and to a serial run — for random
//! plans, batch splits and seeds — and the adaptive workspace path
//! reproduces PR 4's adaptive-determinism property (truncation ≡ fixed
//! plan) with reused workspaces.

use diversify::attack::campaign::{CampaignConfig, CampaignSimulator, CampaignStats, ThreatModel};
use diversify::core::exec::{campaign_plan, Executor, MeasurementsCollector, ReplicationPlan};
use diversify::core::runner::{
    measure_configuration_adaptive, measure_configuration_with, PrecisionTarget,
};
use diversify::des::exec::VecCollector;
use diversify::des::{RngStream, StreamId};
use diversify::scada::network::ScadaNetwork;
use diversify::scada::scope::{ScopeConfig, ScopeSystem};
use proptest::prelude::*;

fn scope_network() -> ScadaNetwork {
    ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone()
}

fn short_campaign() -> CampaignConfig {
    CampaignConfig {
        max_ticks: 24 * 5,
        detection_stops_attack: false,
    }
}

/// Forces real worker threads even on single-core CI machines so the
/// parallel scheduling path is actually exercised.
///
/// Every test in this binary must call this as its *first* statement:
/// libtest runs tests on parallel threads, and funneling them all
/// through the `Once` guarantees the single `set_var` call completes
/// before any thread can concurrently read the environment (the
/// executor reads `RAYON_NUM_THREADS` when it sizes a parallel round).
fn force_worker_threads() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("RAYON_NUM_THREADS", "4"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `run_ws` ≡ `run` ≡ serial for random plans and batch splits, on a
    /// task with real RNG work and a workspace that deliberately carries
    /// garbage between replications.
    #[test]
    fn run_ws_equals_run_equals_serial(
        batches in 1u32..5,
        batch_size in 1u32..9,
        master_seed in any::<u64>(),
    ) {
        force_worker_threads();
        let plan = ReplicationPlan::new(batches, batch_size, master_seed);
        let task = |rep: diversify::des::exec::Replication| {
            let mut rng = RngStream::new(rep.seed, StreamId(9));
            (0..32).map(|_| rng.uniform()).sum::<f64>()
        };
        let serial = Executor::serial().run(&plan, task);
        let parallel = Executor::parallel().run(&plan, task);
        prop_assert_eq!(&serial, &parallel);
        for exec in [Executor::serial(), Executor::parallel()] {
            let ws: Vec<f64> = exec.run_ws(
                &plan,
                || vec![0.0f64; 4], // scratch with stale contents by design
                |scratch: &mut Vec<f64>, rep| {
                    // Workspace history must not leak into the output.
                    scratch.push(rep.seed as f64);
                    task(rep)
                },
                &VecCollector,
            );
            prop_assert_eq!(ws.len(), serial.len());
            for (a, b) in ws.iter().zip(&serial) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// The campaign measurement stack on workspaces matches the
    /// materializing reference fold bit for bit, for random plans.
    #[test]
    fn campaign_measurements_match_reference_fold(
        batches in 1u32..4,
        batch_size in 1u32..7,
        master_seed in any::<u64>(),
    ) {
        force_worker_threads();
        let net = scope_network();
        let threat = ThreatModel::stuxnet_like();
        let plan = campaign_plan(batches, batch_size, master_seed);
        let sim = CampaignSimulator::new(&net, threat.clone(), short_campaign());
        for exec in [Executor::serial(), Executor::parallel()] {
            // The workspace path (what measure_configuration_with runs).
            let ws = measure_configuration_with(&net, &threat, short_campaign(), &plan, exec);
            // The pre-workspace reference: materialize every outcome.
            let reference = exec.collect(&plan, |rep| sim.run(rep.seed), &MeasurementsCollector);
            prop_assert_eq!(ws.summary.replications, reference.summary.replications);
            prop_assert_eq!(ws.summary.successes, reference.summary.successes);
            prop_assert_eq!(ws.summary.detections, reference.summary.detections);
            prop_assert_eq!(
                ws.summary.p_success.to_bits(),
                reference.summary.p_success.to_bits()
            );
            prop_assert_eq!(&ws.summary.tta, &reference.summary.tta);
            prop_assert_eq!(&ws.summary.ttsf, &reference.summary.ttsf);
            prop_assert_eq!(&ws.summary.compromised, &reference.summary.compromised);
            prop_assert_eq!(&ws.batch_p_success, &reference.batch_p_success);
            prop_assert_eq!(&ws.batch_compromised, &reference.batch_compromised);
        }
    }

    /// PR 4's adaptive-determinism fixture, now with reused workspaces:
    /// an adaptive run capped at N replications is bit-identical to the
    /// fixed plan of N, for random batch sizes and caps.
    #[test]
    fn adaptive_with_reused_workspaces_matches_fixed_plans(
        batch_size in 1u32..7,
        cap_rounds in 1u32..5,
        master_seed in any::<u64>(),
    ) {
        force_worker_threads();
        let net = scope_network();
        let threat = ThreatModel::stuxnet_like();
        let base = campaign_plan(1, batch_size, master_seed);
        // An unreachable target pins the run to its cap.
        let target = PrecisionTarget::p_success(1e-12, 1, cap_rounds * batch_size);
        for exec in [Executor::serial(), Executor::parallel()] {
            let adaptive = measure_configuration_adaptive(
                &net, &threat, short_campaign(), &base, exec, &target,
            );
            prop_assert_eq!(adaptive.rounds, cap_rounds);
            let fixed =
                measure_configuration_with(&net, &threat, short_campaign(), &adaptive.plan, exec);
            prop_assert_eq!(
                adaptive.output.summary.p_success.to_bits(),
                fixed.summary.p_success.to_bits()
            );
            prop_assert_eq!(&adaptive.output.summary.tta, &fixed.summary.tta);
            prop_assert_eq!(&adaptive.output.batch_p_success, &fixed.batch_p_success);
            prop_assert_eq!(&adaptive.output.batch_compromised, &fixed.batch_compromised);
        }
    }

    /// One shared workspace replaying a shuffled seed schedule produces
    /// the same per-replication stats as fresh materialized runs — the
    /// workspace is stateless between replications by construction.
    #[test]
    fn workspace_replay_is_order_independent(
        seeds in prop::collection::vec(any::<u64>(), 1..20),
    ) {
        force_worker_threads();
        let net = scope_network();
        let sim = CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), short_campaign());
        let mut ws = sim.workspace();
        // Forward pass through the shared workspace…
        let forward: Vec<CampaignStats> =
            seeds.iter().map(|&s| sim.run_into(&mut ws, s)).collect();
        // …must equal fresh per-seed outcomes, and a reversed replay.
        for (i, &seed) in seeds.iter().enumerate() {
            prop_assert_eq!(sim.run(seed).stats(), forward[i]);
        }
        for (i, &seed) in seeds.iter().enumerate().rev() {
            prop_assert_eq!(sim.run_into(&mut ws, seed), forward[i]);
        }
    }
}
