//! Differential verification of the multilevel-splitting rare-event
//! estimator.
//!
//! * On a genuinely rare all-exponential stage chain (P_SA ≈ 1e-7), the
//!   splitting estimate must agree with the exact CTMC first-passage
//!   probability within its own reported 95% confidence interval — the
//!   analytic backend shares nothing with the splitting engine but the
//!   stage parameters.
//! * On randomized non-rare chains, splitting must agree with
//!   brute-force Monte-Carlo inside combined binomial bands (property
//!   test).
//! * The campaign splitting measurement must be bit-identical on serial
//!   and parallel executors, and reproducible run to run.
//! * Regression guards for the bugfixes that rode along: exact Wilson
//!   endpoints at degenerate counts, valid product intervals with
//!   zero-success levels, and no premature precision verdict at p̂ = 0.

// Test code: the unwrap/expect ban (clippy.toml) applies to the
// non-test library code of diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use diversify::attack::campaign::{CampaignConfig, CampaignStats, ThreatModel};
use diversify::attack::split::StageChainTask;
use diversify::attack::stage::AttackStage;
use diversify::attack::to_san::{compile_stage_chain, success_place, StageParams};
use diversify::core::indicators::{IndicatorAccum, PrecisionResponse};
use diversify::core::{measure_configuration_splitting, Executor};
use diversify::san::{solve, Method, RewardSpec};
use diversify::scada::scope::{ScopeConfig, ScopeSystem};
use diversify::stats::{product_proportion_ci, proportion_ci};
use diversify_des::splitting::Splitting;
use diversify_des::SimTime;
use proptest::prelude::*;

/// Exact first-passage probability of the all-exponential stage chain
/// by `horizon_hours`, from the CTMC backend (uniformization).
fn analytic_chain_probability(params: &[StageParams], horizon_hours: f64) -> f64 {
    let model = compile_stage_chain(params).expect("valid stage chain");
    let success = success_place(&model);
    let result = solve(
        &model,
        &[RewardSpec::first_passage("tta", move |m| {
            m.tokens(success) == 1
        })],
        Method::Analytic {
            horizon: SimTime::from_secs(horizon_hours),
            tol: 1e-13,
            max_states: 64,
        },
    )
    .expect("stage chain is analytic-solvable");
    result
        .estimate("tta")
        .expect("reward present")
        .probability(0)
}

fn uniform_chain(p: f64, rate: f64, stages: usize) -> Vec<StageParams> {
    vec![
        StageParams {
            success_probability: p,
            attempt_rate_per_hour: rate,
        };
        stages
    ]
}

#[test]
fn splitting_matches_analytic_ctmc_on_rare_chain() {
    // Four stages, each passing at effective rate p·rate = 0.02/h, in a
    // 2-hour window: P_SA ≈ (0.04)⁴/4! ≈ 1e-7 — far below anything a
    // 10⁵-replication brute-force plan could resolve, and well under the
    // 1e-5 bar for "rare".
    let params = uniform_chain(0.02, 1.0, 4);
    let horizon = 2.0;
    let exact = analytic_chain_probability(&params, horizon);
    assert!(exact <= 1e-5, "design point must be rare, got {exact}");
    assert!(exact > 0.0);

    let task = StageChainTask::new(params, horizon);
    let run = Splitting::try_new(4000, 0x5EED_2013)
        .unwrap()
        .run(&task, &Executor::parallel())
        .unwrap();
    let ci = product_proportion_ci(&run.conditionals(), 0.95).unwrap();
    assert!(
        ci.lower <= exact && exact <= ci.upper,
        "analytic {exact} outside splitting 95% CI [{}, {}] (estimate {})",
        ci.lower,
        ci.upper,
        run.estimate
    );
    // The estimate itself is in the right decade.
    assert!(
        run.estimate > exact / 10.0 && run.estimate < exact * 10.0,
        "splitting {} vs analytic {exact}",
        run.estimate
    );
}

#[test]
fn splitting_reaches_rare_events_brute_force_cannot() {
    // At P_SA ≈ 1e-7, a brute-force plan of the same total tick budget
    // observes (almost surely) zero successes; splitting still produces
    // a positive estimate with a finite interval.
    let params = uniform_chain(0.02, 1.0, 4);
    let task = StageChainTask::new(params, 2.0);
    let run = Splitting::try_new(2000, 77)
        .unwrap()
        .run(&task, &Executor::serial())
        .unwrap();
    assert!(run.estimate > 0.0, "splitting must reach the rare event");

    let mut brute_hits = 0u64;
    let mut brute_ticks = 0u64;
    let mut walks = 0u64;
    while brute_ticks < run.total_ticks {
        let (hit, ticks) = task.walk(0xB0B ^ walks);
        brute_hits += u64::from(hit);
        brute_ticks += ticks;
        walks += 1;
    }
    assert_eq!(
        brute_hits, 0,
        "a tick-budget-matched brute-force plan should see no successes"
    );
}

#[test]
fn campaign_splitting_is_bit_identical_across_executors_and_runs() {
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let threat = ThreatModel::stuxnet_like();
    let config = CampaignConfig::default();
    let serial = measure_configuration_splitting(
        &net,
        &threat,
        config,
        300,
        0xD5_2013,
        Executor::serial(),
        0.95,
    )
    .unwrap();
    let parallel = measure_configuration_splitting(
        &net,
        &threat,
        config,
        300,
        0xD5_2013,
        Executor::parallel(),
        0.95,
    )
    .unwrap();
    assert_eq!(serial.estimate.to_bits(), parallel.estimate.to_bits());
    assert_eq!(serial.levels, parallel.levels);
    assert_eq!(serial.total_ticks, parallel.total_ticks);
    assert_eq!(serial.ci.lower.to_bits(), parallel.ci.lower.to_bits());
    assert_eq!(serial.ci.upper.to_bits(), parallel.ci.upper.to_bits());

    let again = measure_configuration_splitting(
        &net,
        &threat,
        config,
        300,
        0xD5_2013,
        Executor::parallel(),
        0.95,
    )
    .unwrap();
    assert_eq!(serial.estimate.to_bits(), again.estimate.to_bits());
}

// ---------------------------------------------------------------------
// Bugfix regression guards.
// ---------------------------------------------------------------------

#[test]
fn wilson_degenerate_endpoints_are_exact() {
    for trials in [1u64, 5, 100, 10_000] {
        let zero = proportion_ci(0, trials, 0.95).unwrap();
        assert_eq!(zero.lower.to_bits(), 0.0f64.to_bits(), "no -0.0 lower");
        assert_eq!(zero.estimate, 0.0);
        assert!(zero.upper > 0.0 && zero.upper < 1.0);
        let full = proportion_ci(trials, trials, 0.95).unwrap();
        assert_eq!(full.upper.to_bits(), 1.0f64.to_bits());
        assert!(full.lower < 1.0 && full.lower > 0.0);
    }
}

#[test]
fn product_ci_with_zero_success_level_stays_valid() {
    let ci = product_proportion_ci(&[(50, 100), (0, 100), (40, 100)], 0.95).unwrap();
    assert_eq!(ci.estimate, 0.0);
    assert_eq!(ci.lower, 0.0);
    assert!(ci.upper > 0.0 && ci.upper < 1.0, "finite non-trivial upper");
}

#[test]
fn all_failure_accumulator_never_reports_precision() {
    let mut acc = IndicatorAccum::new();
    let failure = CampaignStats {
        time_to_attack: None,
        time_to_detection: Some(3),
        final_compromised_ratio: 0.0,
        deepest_stage: AttackStage::Initial,
        firewall_blocks: 1,
        payload_failures: 0,
    };
    for _ in 0..1000 {
        acc.push_stats(&failure);
    }
    // Before the fix, 1000 failures yielded a (0 ± 0) interval that
    // satisfied any relative stop rule, ending adaptive runs instantly
    // on exactly the rare design points that need replications most.
    assert!(acc.precision(PrecisionResponse::PSuccess, 0.95).is_none());
    assert!(acc
        .precision(PrecisionResponse::CompromisedRatio, 0.95)
        .is_none());
}

// ---------------------------------------------------------------------
// Property: splitting ≡ brute force on non-rare chains.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On non-rare design points both estimators see the same physics:
    /// the splitting estimate must fall inside a combined 99.9% band
    /// around the brute-force Monte-Carlo estimate.
    #[test]
    fn prop_splitting_agrees_with_brute_force_when_not_rare(
        p in 0.25f64..0.75,
        rate in 0.5f64..2.0,
        stages in 2usize..5,
        seed in any::<u64>(),
    ) {
        let horizon = 6.0 / rate;
        let task = StageChainTask::new(uniform_chain(p, rate, stages), horizon);
        let trials = 1500u64;
        let hits = (0..trials).filter(|&s| task.walk(seed ^ (s << 8)).0).count();
        #[allow(clippy::cast_precision_loss)]
        let mc = hits as f64 / trials as f64;

        let run = Splitting::try_new(1500, seed)
            .unwrap()
            .run(&task, &Executor::serial())
            .unwrap();
        // Combined noise: binomial on the MC side plus the splitting
        // interval's own half-width, with an absolute floor.
        let ci = product_proportion_ci(&run.conditionals(), 0.999).unwrap();
        let mc_half = 3.29 * (mc * (1.0 - mc) / trials as f64).sqrt();
        let split_half = ((ci.upper - ci.lower) / 2.0).max(run.estimate * 0.05);
        prop_assert!(
            (run.estimate - mc).abs() <= mc_half + split_half + 0.02,
            "splitting {} vs brute force {} (band {})",
            run.estimate, mc, mc_half + split_half + 0.02
        );
    }
}
