//! Differential oracle for the event-driven frontier engine.
//!
//! The PR 6 tentpole rebuilt the campaign tick loop around an infection
//! frontier so a tick costs O(frontier) instead of O(nodes). The dense
//! reference sweep (`CampaignSimulator::run_reference`) was kept as the
//! semantic oracle: for every network, threat model and seed, the
//! frontier engine must be **bit-identical** to it — same outcome, same
//! per-tick ratio curve, same scalar stats. This suite checks that over
//! the hand-built SCoPE network and randomized generated fleets.

use diversify::attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify::scada::fleet::{FleetConfig, FleetSystem};
use diversify::scada::network::ScadaNetwork;
use diversify::scada::scope::{ScopeConfig, ScopeSystem};
use proptest::prelude::*;

fn scope_network() -> ScadaNetwork {
    ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone()
}

fn threat_for(kind: u8) -> ThreatModel {
    match kind % 3 {
        0 => ThreatModel::stuxnet_like(),
        1 => ThreatModel::duqu_like(),
        _ => ThreatModel::flame_like(),
    }
}

/// Asserts frontier ≡ dense reference ≡ materializing path for one
/// (network, threat, config) triple across the given seeds.
fn assert_paths_agree(
    net: &ScadaNetwork,
    threat: ThreatModel,
    config: CampaignConfig,
    seeds: &[u64],
) {
    let sim = CampaignSimulator::new(net, threat, config);
    let mut ws = sim.workspace();
    for &seed in seeds {
        let reference = sim.run_reference(seed);
        let outcome = sim.run(seed);
        assert_eq!(outcome, reference, "run != run_reference at seed {seed}");
        let stats = sim.run_into(&mut ws, seed);
        assert_eq!(
            stats,
            reference.stats(),
            "run_into != reference at seed {seed}"
        );
    }
}

#[test]
fn frontier_matches_reference_on_scope_network() {
    let net = scope_network();
    for threat in [
        ThreatModel::stuxnet_like(),
        ThreatModel::duqu_like(),
        ThreatModel::flame_like(),
    ] {
        assert_paths_agree(
            &net,
            threat,
            CampaignConfig::default(),
            &(0..20).collect::<Vec<_>>(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Frontier ≡ reference on randomized plant families: plant count,
    /// substation fan-out, PLC density and the generator seed all vary,
    /// so the fleets range from a single sparse plant (~30 nodes) to a
    /// few hundred nodes with redundant gateway links.
    #[test]
    fn frontier_matches_reference_on_random_fleets(
        plants in 1usize..4,
        substations in 1usize..6,
        plcs in 1usize..6,
        offices in 1usize..4,
        fleet_seed in any::<u64>(),
        threat_kind in 0u8..3,
        campaign_seed in any::<u64>(),
        detection_stops_attack in any::<bool>(),
    ) {
        let config = FleetConfig {
            plants,
            substations_per_plant: substations,
            plcs_per_substation: plcs,
            offices_per_plant: offices,
            seed: fleet_seed,
            ..FleetConfig::default()
        };
        let fleet = FleetSystem::build(&config);
        let campaign = CampaignConfig {
            max_ticks: 24 * 10,
            detection_stops_attack,
        };
        assert_paths_agree(
            fleet.network(),
            threat_for(threat_kind),
            campaign,
            &[campaign_seed, campaign_seed.wrapping_add(1)],
        );
    }
}
