//! Property-based tests (proptest) on the workspace's core invariants.

// Test code: the unwrap/expect ban (clippy.toml) applies to the
// non-test library code of diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use diversify::attack::chain::{chain_success_probability, MachineChain};
use diversify::attack::tree::{AttackTree, TreeNode};
use diversify::scada::protocol::dialect::ProtocolDialect;
use diversify::scada::protocol::frame::{Pdu, Request};
use diversify::stats::anova::{factorial_two_level, EffectSpec};
use diversify::stats::special::{inc_beta, inc_gamma};
use diversify_doe::design::full_factorial;
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (0u16..1000, 1u16..100).prop_map(|(address, count)| Request::ReadCoils { address, count }),
        (0u16..1000, 1u16..100)
            .prop_map(|(address, count)| { Request::ReadHoldingRegisters { address, count } }),
        (0u16..1000, 1u16..100)
            .prop_map(|(address, count)| { Request::ReadInputRegisters { address, count } }),
        (0u16..1000, any::<bool>())
            .prop_map(|(address, value)| Request::WriteSingleCoil { address, value }),
        (0u16..1000, any::<u16>())
            .prop_map(|(address, value)| Request::WriteSingleRegister { address, value }),
        (0u16..1000, prop::collection::vec(any::<u16>(), 1..20))
            .prop_map(|(address, values)| Request::WriteMultipleRegisters { address, values }),
        prop::collection::vec(any::<u8>(), 0..200)
            .prop_map(|image| Request::DownloadLogic { image }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every dialect round-trips every well-formed request.
    #[test]
    fn dialect_round_trip(req in arb_request(), key in any::<u64>()) {
        let pdu = Pdu::Request(req);
        for dialect in ProtocolDialect::ALL {
            let wire = dialect.encode(&pdu, key);
            let back = dialect.decode(&wire, key).expect("round trip");
            prop_assert_eq!(&back, &pdu);
        }
    }

    /// No dialect ever accepts another dialect's frames.
    #[test]
    fn dialect_cross_rejection(req in arb_request(), key in any::<u64>()) {
        let pdu = Pdu::Request(req);
        for enc in ProtocolDialect::ALL {
            let wire = enc.encode(&pdu, key);
            for dec in ProtocolDialect::ALL {
                if enc != dec {
                    prop_assert!(dec.decode(&wire, key).is_err());
                }
            }
        }
    }

    /// Chain success probability is in [0,1], and diversity never helps
    /// the attacker.
    #[test]
    fn chain_probability_bounds(
        k in 1usize..8,
        p in 0.0f64..=1.0,
    ) {
        let same = chain_success_probability(&MachineChain::identical(k, p));
        let diff = chain_success_probability(&MachineChain::diverse(k, p));
        prop_assert!((0.0..=1.0).contains(&same));
        prop_assert!((0.0..=1.0).contains(&diff));
        prop_assert!(diff <= same + 1e-12, "diversity must not raise P_SA");
    }

    /// Attack-tree probability stays in [0,1] for random two-level trees,
    /// and raising any leaf never lowers the root (monotonicity).
    #[test]
    fn tree_monotone(
        p1 in 0.0f64..=1.0,
        p2 in 0.0f64..=1.0,
        p3 in 0.0f64..=1.0,
        bump in 0.0f64..=1.0,
    ) {
        let tree = AttackTree::new(TreeNode::or(vec![
            TreeNode::and(vec![TreeNode::leaf("a", p1), TreeNode::leaf("b", p2)]),
            TreeNode::leaf("c", p3),
        ])).expect("valid");
        let base = tree.success_probability();
        prop_assert!((0.0..=1.0).contains(&base));
        let raised = tree
            .with_leaf_probability("a", (p1 + bump).min(1.0))
            .success_probability();
        prop_assert!(raised + 1e-12 >= base);
    }

    /// Regularized incomplete beta/gamma stay within [0,1] and are
    /// monotone in x.
    #[test]
    fn special_functions_bounded(
        a in 0.1f64..20.0,
        b in 0.1f64..20.0,
        x in 0.0f64..=1.0,
        g in 0.0f64..50.0,
    ) {
        let ib = inc_beta(x, a, b);
        prop_assert!((0.0..=1.0).contains(&ib));
        let ib2 = inc_beta((x + 0.05).min(1.0), a, b);
        prop_assert!(ib2 + 1e-9 >= ib);
        let ig = inc_gamma(a, g);
        prop_assert!((0.0..=1.0).contains(&ig));
    }

    /// Full factorial designs are always balanced and orthogonal.
    #[test]
    fn factorial_designs_orthogonal(k in 1usize..7) {
        let names: Vec<String> = (0..k).map(|i| format!("f{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let d = full_factorial(&refs).expect("valid");
        prop_assert!(d.is_balanced());
        prop_assert!(d.is_orthogonal());
        prop_assert_eq!(d.runs(), 1 << k);
    }

    /// ANOVA sum-of-squares decomposition: effects + error ≤ total, and
    /// with a saturated effect set the decomposition is exact.
    #[test]
    fn anova_decomposition(
        responses in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 2),
            4
        )
    ) {
        let design = vec![vec![-1, -1], vec![1, -1], vec![-1, 1], vec![1, 1]];
        let effects = vec![
            EffectSpec::main("A", 0),
            EffectSpec::main("B", 1),
            EffectSpec::interaction("AB", 0, 1),
        ];
        let t = factorial_two_level(&design, &responses, &effects).expect("regular design");
        let sum: f64 = t.rows.iter().map(|r| r.sum_sq).sum();
        // Saturated model: SS_A + SS_B + SS_AB + SS_error == SS_total.
        prop_assert!((sum - t.ss_total).abs() < 1e-6 * (1.0 + t.ss_total));
        for r in &t.rows {
            prop_assert!(r.sum_sq >= -1e-9);
        }
    }
}
