//! Allocation-regression guard for the replication hot loops.
//!
//! A counting `#[global_allocator]` wraps the system allocator; each
//! test warms a workload up (first pass sizes every reusable buffer),
//! then re-runs the *same* seeds and asserts the allocation counter did
//! not move. Identical seeds produce identical trajectories, so any
//! steady-state allocation — a buffer that is reallocated instead of
//! reused, a collection that grows past its warm-up size — shows up as
//! a non-zero delta.
//!
//! The loops under guard are the ones the tentpole made allocation-free:
//! the campaign simulator driven through a reused
//! [`CampaignWorkspace`], and the incremental SAN engine driven through
//! a recycled [`SimState`].

// Test code: the unwrap/expect ban (clippy.toml) applies to the
// non-test library code of diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use diversify::attack::campaign::{
    CampaignConfig, CampaignSimulator, CampaignWorkspace, ThreatModel,
};
use diversify::attack::to_san::compile_network_campaign;
use diversify::des::SimTime;
use diversify::san::{Engine, SimState, Simulator};
use diversify::scada::network::ScadaNetwork;
use diversify::scada::scope::{ScopeConfig, ScopeSystem};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation routed through the global
/// allocator. Deallocations are not counted: the property under test is
/// "no new memory is requested", which `alloc`/`realloc` alone witness.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The counter is process-global, but libtest runs tests on parallel
/// threads — a sibling test allocating inside another test's measured
/// window would fail it spuriously. Every test takes this lock around
/// its whole body so measured windows never overlap.
static MEASURE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn measured() -> std::sync::MutexGuard<'static, ()> {
    // A poisoned lock only means another test failed; measuring is
    // still sound.
    MEASURE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn scope_network() -> ScadaNetwork {
    ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone()
}

/// The campaign hot loop: after one warm-up pass over the seed set, a
/// second pass over the same seeds through the same workspace must not
/// allocate at all.
#[test]
fn campaign_replications_are_allocation_free_after_warmup() {
    let _guard = measured();
    let net = scope_network();
    let seeds: Vec<u64> = (0..25).collect();
    for threat in [ThreatModel::stuxnet_like(), ThreatModel::duqu_like()] {
        let sim = CampaignSimulator::new(&net, threat, CampaignConfig::default());
        let mut ws = sim.workspace();
        for &seed in &seeds {
            black_box(sim.run_into(&mut ws, seed));
        }
        let before = allocations();
        for &seed in &seeds {
            black_box(sim.run_into(&mut ws, seed));
        }
        let delta = allocations() - before;
        assert_eq!(
            delta,
            0,
            "campaign loop allocated {delta} times across {} warm replications",
            seeds.len()
        );
    }
}

/// A fresh (default-constructed) workspace reaches the allocation-free
/// steady state too — sizing is part of warm-up, not of the loop.
#[test]
fn lazily_sized_workspace_stops_allocating_once_warm() {
    let _guard = measured();
    let net = scope_network();
    let sim = CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
    let mut ws = CampaignWorkspace::new();
    for seed in 0..10u64 {
        black_box(sim.run_into(&mut ws, seed));
    }
    let before = allocations();
    for seed in 0..10u64 {
        black_box(sim.run_into(&mut ws, seed));
    }
    assert_eq!(allocations() - before, 0);
}

/// The lockstep batch loop: after one warm-up batch sizes the lanes,
/// the probability tables and the SoA RNG blocks, re-running batches of
/// the same width through the same [`BatchedCampaignWorkspace`] must
/// not allocate — per-batch cost is table refill plus lane stepping,
/// all over reused capacity.
#[test]
fn lockstep_batches_are_allocation_free_after_warmup() {
    use diversify::attack::campaign::BatchedCampaignWorkspace;
    let _guard = measured();
    let net = scope_network();
    let seeds: Vec<u64> = (0..16).map(|i| 0xBA7C ^ (i * 0x9E37)).collect();
    for threat in [ThreatModel::stuxnet_like(), ThreatModel::duqu_like()] {
        let sim = CampaignSimulator::new(&net, threat, CampaignConfig::default());
        let mut ws = BatchedCampaignWorkspace::new();
        black_box(sim.run_batch_into(&mut ws, &seeds));
        let before = allocations();
        for _ in 0..4 {
            black_box(sim.run_batch_into(&mut ws, &seeds));
        }
        let delta = allocations() - before;
        assert_eq!(
            delta,
            0,
            "lockstep loop allocated {delta} times across 4 warm batches of {}",
            seeds.len()
        );
    }
}

/// The frontier engine at fleet scale: on a generated 10^4-node plant
/// family, replications through a warm workspace stay allocation-free —
/// the sparse reset and the hierarchical-bitset frontier never touch
/// the allocator once sized.
#[test]
fn fleet_scale_campaign_is_allocation_free_after_warmup() {
    use diversify::scada::fleet::{FleetConfig, FleetSystem};
    let _guard = measured();
    let fleet = FleetSystem::build(&FleetConfig::sized(10_000, 0xA110C));
    let sim = CampaignSimulator::new(
        fleet.network(),
        ThreatModel::stuxnet_like(),
        CampaignConfig::default(),
    );
    let mut ws = sim.workspace();
    let seeds: Vec<u64> = (0..5).collect();
    for &seed in &seeds {
        black_box(sim.run_into(&mut ws, seed));
    }
    let before = allocations();
    for &seed in &seeds {
        black_box(sim.run_into(&mut ws, seed));
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "fleet-scale campaign loop allocated {delta} times after warm-up"
    );
}

/// The incremental SAN engine on the mid-size SCoPE network-campaign
/// model: recycling one `SimState` across replications, the second pass
/// over the same seeds performs zero allocations — calendar slots,
/// schedule, weight tables and dependency scratch are all reused.
#[test]
fn san_incremental_engine_is_allocation_free_after_warmup() {
    let _guard = measured();
    let net = scope_network();
    let san = compile_network_campaign(&net, &ThreatModel::stuxnet_like())
        .expect("SCoPE network compiles");
    let horizon = SimTime::from_secs(2_000.0);
    let seeds: Vec<u64> = (1..=10).collect();
    let mut state = SimState::new(&san.model);
    let run_pass = |mut state: SimState, seeds: &[u64]| -> (SimState, u64) {
        let mut events = 0u64;
        for &seed in seeds {
            let mut sim = Simulator::with_state(&san.model, seed, Engine::Incremental, state);
            sim.run_until(horizon);
            events += sim.firings();
            state = sim.into_state();
        }
        (state, events)
    };
    let warm;
    (state, warm) = run_pass(state, &seeds);
    let before = allocations();
    let (_state, again) = run_pass(state, &seeds);
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "incremental SAN engine allocated {delta} times across {warm}-event warm passes"
    );
    assert_eq!(warm, again, "identical seeds must replay identically");
}

/// The hardened executor path (panic isolation + budget checks wrapped
/// around every replication) keeps the steady state allocation-free:
/// failure-path allocations (boxed error records, panic payloads) only
/// happen when a replication actually fails, so a fault-free serial run
/// through a warm workspace must not allocate per replication.
#[test]
fn hardened_executor_path_is_allocation_free_per_replication() {
    let _guard = measured();
    use diversify::des::exec::{Executor, MeanCollector, ReplicationPlan, RunPolicy};
    let net = scope_network();
    let sim = CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
    let policy = RunPolicy::new();
    let run = |reps: u32| -> u64 {
        let plan = ReplicationPlan::new(reps, 10, 0x2EE0);
        let before = allocations();
        let part = Executor::serial().run_ws_budgeted(
            &plan,
            || sim.workspace(),
            |ws, rep| {
                let stats = sim.run_into(ws, rep.seed);
                stats.final_compromised_ratio
            },
            &MeanCollector,
            &policy,
        );
        assert!(!part.is_degraded());
        black_box(part);
        allocations() - before
    };
    // Warm-up sizes the workspace pool and any lazy runtime state.
    let _ = run(2);
    let small = run(4);
    let large = run(8);
    // Per-round overhead must be zero: doubling the rounds (and thus
    // the budget checks and catch_unwind frames) adds no allocations
    // beyond the fixed setup (pool + accumulator + failure Vec).
    assert!(
        large <= small + 4,
        "hardened executor allocates per replication: {small} at 4 rounds, {large} at 8"
    );
}

/// The Monte-Carlo transient solver reuses its simulator state and
/// observers: doubling the replication count must not change the
/// *per-replication* allocation count — i.e. all allocation is setup.
#[test]
fn transient_solver_allocations_do_not_scale_with_replications() {
    let _guard = measured();
    use diversify::san::{RewardSpec, TransientSolver};
    let net = scope_network();
    let san = compile_network_campaign(&net, &ThreatModel::stuxnet_like())
        .expect("SCoPE network compiles");
    let impaired = san.impaired;
    let needed = san.goal_tokens;
    let rewards = [RewardSpec::first_passage("tta", move |m| {
        m.tokens(impaired) >= needed
    })];
    let horizon = SimTime::from_secs(500.0);
    let count_for = |reps: u32| -> u64 {
        let before = allocations();
        black_box(TransientSolver::new(horizon, reps, 7).solve(&san.model, &rewards));
        allocations() - before
    };
    // Warm-up: fault in lazily initialized runtime structures.
    let _ = count_for(5);
    let small = count_for(40);
    let large = count_for(80);
    assert!(
        large <= small + 8,
        "solver allocations scale with replications: {small} at 40 reps, {large} at 80"
    );
}
