//! Cross-crate integration: the full three-step pipeline and the claims
//! it must reproduce.

// Test code: the unwrap/expect ban (clippy.toml) applies to the
// non-test library code of diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use diversify::attack::campaign::{CampaignConfig, ThreatModel};
use diversify::core::pipeline::{Pipeline, PipelineConfig};
use diversify::core::runner::measure_configuration;
use diversify::diversity::config::DiversityConfig;
use diversify::diversity::placement::{apply_placement, PlacementStrategy};
use diversify::scada::components::ComponentProfile;
use diversify::scada::scope::{ScopeConfig, ScopeSystem};

fn small_pipeline() -> PipelineConfig {
    PipelineConfig {
        batches: 2,
        batch_size: 6,
        campaign: CampaignConfig {
            max_ticks: 24 * 14,
            detection_stops_attack: false,
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn pipeline_produces_complete_report() {
    let report = Pipeline::new(small_pipeline()).run();
    // Step 2: 16 runs of a 2^(6-2) design, each measured.
    assert_eq!(report.doe.design.runs(), 16);
    assert!(report.doe.design.is_orthogonal());
    assert_eq!(report.doe.measurements.len(), 16);
    // Step 3: six ranked component classes with variance shares in [0,1].
    assert_eq!(report.assessment.ranking.len(), 6);
    for (_, v) in &report.assessment.ranking {
        assert!((0.0..=1.0).contains(v));
    }
    // Ranking is sorted descending.
    for w in report.assessment.ranking.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
}

#[test]
fn anova_decomposition_is_consistent() {
    let report = Pipeline::new(small_pipeline()).run();
    let anova = &report.assessment.anova_p_success;
    let effects_ss: f64 = anova.rows.iter().map(|r| r.sum_sq).sum();
    // Effects + error never exceed the total sum of squares.
    assert!(
        effects_ss <= anova.ss_total + 1e-9,
        "SS decomposition exceeded total: {effects_ss} > {}",
        anova.ss_total
    );
}

#[test]
fn diversity_lowers_success_probability() {
    // The headline claim: diversified configuration dominates the
    // monoculture on P_SA. The horizon is bounded (36 h): with unbounded
    // persistence everything eventually falls, and the paper's argument is
    // precisely about raising attacker *effort and time*.
    let campaign = CampaignConfig {
        max_ticks: 36,
        detection_stops_attack: false,
    };
    let threat = ThreatModel::stuxnet_like();
    let p_for = |cfg: &DiversityConfig, seed: u64| {
        let mut net = ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone();
        cfg.apply(&mut net);
        measure_configuration(&net, &threat, campaign, 2, 40, seed)
            .summary
            .p_success
    };
    let mono = p_for(&DiversityConfig::monoculture(), 5);
    let diverse = p_for(&DiversityConfig::full_rotation(), 5);
    assert!(
        diverse < mono - 0.05,
        "diversity must lower P_SA: diverse {diverse} vs mono {mono}"
    );
}

#[test]
fn strategic_placement_beats_random_at_small_k() {
    // The paper's preliminary sensitivity-analysis claim, averaged over
    // seeds to suppress Monte-Carlo noise.
    let campaign = CampaignConfig {
        max_ticks: 24 * 14,
        detection_stops_attack: false,
    };
    let threat = ThreatModel::stuxnet_like();
    let measure = |strategy: PlacementStrategy, seed: u64| {
        let mut net = ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone();
        apply_placement(&mut net, strategy, ComponentProfile::hardened());
        measure_configuration(&net, &threat, campaign, 2, 25, seed)
            .summary
            .p_success
    };
    let k = 3;
    let strategic: f64 = (0..3)
        .map(|s| measure(PlacementStrategy::Strategic { k }, s))
        .sum::<f64>()
        / 3.0;
    let random: f64 = (0..3)
        .map(|s| measure(PlacementStrategy::Random { k, seed: 100 + s }, s))
        .sum::<f64>()
        / 3.0;
    let none: f64 = (0..3)
        .map(|s| measure(PlacementStrategy::None, s))
        .sum::<f64>()
        / 3.0;
    assert!(
        strategic <= none,
        "strategic hardening should not hurt: {strategic} vs baseline {none}"
    );
    assert!(
        strategic <= random + 0.12,
        "strategic should be at least comparable to random: {strategic} vs {random}"
    );
}

#[test]
fn espionage_and_sabotage_threats_differ_in_depth() {
    use diversify::attack::campaign::CampaignSimulator;
    use diversify::attack::stage::AttackStage;
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let cfg = CampaignConfig::default();
    let stux = CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), cfg).run_many(20, 1);
    let duqu = CampaignSimulator::new(&net, ThreatModel::duqu_like(), cfg).run_many(20, 1);
    let max_stage = |os: &[diversify::attack::campaign::CampaignOutcome]| {
        os.iter().map(|o| o.deepest_stage).max().unwrap()
    };
    assert_eq!(max_stage(&stux), AttackStage::DeviceImpairment);
    assert!(max_stage(&duqu) < AttackStage::DeviceImpairment);
}
