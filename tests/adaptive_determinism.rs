//! Cross-crate guarantees of the adaptive-precision replication path:
//! an adaptive run is nothing but a fixed plan whose size was chosen on
//! the fly — truncating it at N replications reproduces the fixed plan
//! of N bit for bit, on every executor, at the measurement and pipeline
//! levels.

// Test code: the unwrap/expect ban (clippy.toml) applies to the
// non-test library code of diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use diversify::attack::campaign::{CampaignConfig, ThreatModel};
use diversify::core::exec::{campaign_plan, Executor};
use diversify::core::pipeline::{Pipeline, PipelineConfig};
use diversify::core::runner::{
    measure_configuration_adaptive, measure_configuration_with, PrecisionTarget,
};
use diversify::scada::network::ScadaNetwork;
use diversify::scada::scope::{ScopeConfig, ScopeSystem};

fn scope_network() -> ScadaNetwork {
    ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone()
}

fn short_campaign() -> CampaignConfig {
    CampaignConfig {
        max_ticks: 24 * 10,
        detection_stops_attack: false,
    }
}

/// Forces real worker threads even on single-core CI machines so the
/// parallel scheduling path is actually exercised.
fn force_worker_threads() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("RAYON_NUM_THREADS", "4"));
}

/// The headline property: an adaptive run that stopped after N
/// replications returns `Measurements` bit-identical to the fixed plan
/// of N — every field, not approximately.
#[test]
fn adaptive_measurements_are_bit_identical_to_fixed_plan() {
    force_worker_threads();
    let net = scope_network();
    let threat = ThreatModel::stuxnet_like();
    let base = campaign_plan(1, 8, 0xADA9);
    // An unreachable target pins the adaptive run to its cap (4 rounds);
    // a reachable one stops wherever the variance says. Both must match
    // the fixed plan of whatever size they ended at.
    let targets = [
        PrecisionTarget::p_success(1e-12, 8, 32),
        PrecisionTarget::p_success(0.10, 8, 400),
    ];
    for target in &targets {
        for exec in [Executor::serial(), Executor::parallel()] {
            let adaptive = measure_configuration_adaptive(
                &net,
                &threat,
                short_campaign(),
                &base,
                exec,
                target,
            );
            assert_eq!(adaptive.replications % 8, 0);
            let fixed =
                measure_configuration_with(&net, &threat, short_campaign(), &adaptive.plan, exec);
            let (a, f) = (&adaptive.output.summary, &fixed.summary);
            assert_eq!(a.replications, f.replications);
            assert_eq!(a.successes, f.successes);
            assert_eq!(a.detections, f.detections);
            assert_eq!(a.p_success.to_bits(), f.p_success.to_bits());
            assert_eq!(a.mean_tta, f.mean_tta);
            assert_eq!(a.mean_ttsf, f.mean_ttsf);
            assert_eq!(a.tta, f.tta);
            assert_eq!(a.ttsf, f.ttsf);
            assert_eq!(a.compromised, f.compromised);
            assert_eq!(adaptive.output.batch_p_success, fixed.batch_p_success);
            assert_eq!(adaptive.output.batch_compromised, fixed.batch_compromised);
        }
    }
}

/// Serial and parallel adaptive runs agree on everything, including how
/// many replications they decided to spend.
#[test]
fn adaptive_runs_are_executor_invariant() {
    force_worker_threads();
    let net = scope_network();
    let threat = ThreatModel::stuxnet_like();
    let target = PrecisionTarget::p_success(0.08, 16, 240);
    let base = campaign_plan(1, 8, 0x5EED5);
    let serial = measure_configuration_adaptive(
        &net,
        &threat,
        short_campaign(),
        &base,
        Executor::serial(),
        &target,
    );
    let parallel = measure_configuration_adaptive(
        &net,
        &threat,
        short_campaign(),
        &base,
        Executor::parallel(),
        &target,
    );
    assert_eq!(serial.replications, parallel.replications);
    assert_eq!(serial.rounds, parallel.rounds);
    assert_eq!(serial.target_met, parallel.target_met);
    assert_eq!(serial.precision, parallel.precision);
    assert_eq!(
        serial.output.summary.p_success.to_bits(),
        parallel.output.summary.p_success.to_bits()
    );
    assert_eq!(
        serial.output.batch_p_success,
        parallel.output.batch_p_success
    );
}

/// The replication bounds hold: never a check before min, never a round
/// past max, and the spend orders itself by variance (the low-variance
/// monoculture stops at or before the diversified plant's spend under
/// the same target).
#[test]
fn adaptive_bounds_and_variance_ordering() {
    let net = scope_network();
    let threat = ThreatModel::stuxnet_like();
    let target = PrecisionTarget::p_success(0.05, 24, 96);
    let run = measure_configuration_adaptive(
        &net,
        &threat,
        short_campaign(),
        &campaign_plan(1, 8, 7),
        Executor::default(),
        &target,
    );
    assert!(
        run.replications >= 24,
        "min bound violated: {}",
        run.replications
    );
    assert!(
        run.replications <= 96,
        "max bound violated: {}",
        run.replications
    );
    assert_eq!(run.plan.batch_size(), 8);
    assert_eq!(run.plan.batches(), run.rounds);
}

/// A precision-targeted pipeline sweep is reproducible end to end and
/// bit-identical across executors: same per-run replication spend, same
/// measurements, same ranking.
#[test]
fn precision_targeted_pipeline_is_executor_invariant() {
    force_worker_threads();
    let config = |executor| PipelineConfig {
        batches: 2,
        batch_size: 5,
        campaign: CampaignConfig {
            max_ticks: 24 * 7,
            detection_stops_attack: false,
        },
        executor,
        precision: Some(PrecisionTarget::p_success(0.20, 10, 60)),
        ..PipelineConfig::default()
    };
    let serial = Pipeline::new(config(Executor::serial())).run();
    let parallel = Pipeline::new(config(Executor::parallel())).run();
    let (sa, pa) = (
        serial.doe.adaptive.as_ref().expect("adaptive sweep"),
        parallel.doe.adaptive.as_ref().expect("adaptive sweep"),
    );
    assert_eq!(sa.len(), pa.len());
    for (x, y) in sa.iter().zip(pa) {
        assert_eq!(x.replications, y.replications);
        assert_eq!(x.batches, y.batches);
        assert_eq!(x.target_met, y.target_met);
        assert_eq!(x.precision, y.precision);
    }
    for (a, b) in serial
        .doe
        .measurements
        .iter()
        .zip(&parallel.doe.measurements)
    {
        assert_eq!(a.batch_p_success, b.batch_p_success);
        assert_eq!(a.batch_compromised, b.batch_compromised);
    }
    for (x, y) in serial
        .assessment
        .ranking
        .iter()
        .zip(&parallel.assessment.ranking)
    {
        assert_eq!(x.0, y.0);
        assert_eq!(x.1.to_bits(), y.1.to_bits());
    }
}
