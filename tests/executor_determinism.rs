//! Cross-crate guarantees of the unified execution layer: scheduling
//! never changes results, and the whole experiment suite runs end to end
//! at quick scale.

// Test code: the unwrap/expect ban (clippy.toml) applies to the
// non-test library code of diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use diversify::attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify::core::exec::{campaign_plan, ExecMode, Executor, ReplicationPlan};
use diversify::core::pipeline::{Pipeline, PipelineConfig};
use diversify::core::runner::measure_configuration_with;
use diversify::scada::scope::{ScopeConfig, ScopeSystem};
use diversify_bench::{run_all, Scale};

/// Forces real worker threads even on single-core CI machines so the
/// parallel scheduling path is actually exercised (the rayon shim honors
/// `RAYON_NUM_THREADS` like upstream).
fn force_worker_threads() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("RAYON_NUM_THREADS", "4"));
}

/// The determinism property: the same plan produces bit-identical
/// `Measurements` on the serial and the parallel executor.
#[test]
fn measurements_are_bit_identical_across_executors() {
    force_worker_threads();
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let threat = ThreatModel::stuxnet_like();
    let config = CampaignConfig {
        max_ticks: 24 * 14,
        detection_stops_attack: false,
    };
    for seed in [1u64, 0xD1CE, u64::MAX] {
        let plan = campaign_plan(4, 10, seed);
        let serial = measure_configuration_with(&net, &threat, config, &plan, Executor::serial());
        let parallel =
            measure_configuration_with(&net, &threat, config, &plan, Executor::parallel());
        // Bit-level equality on every field, not approximate agreement.
        assert_eq!(
            serial.summary.p_success.to_bits(),
            parallel.summary.p_success.to_bits()
        );
        assert_eq!(serial.summary.replications, parallel.summary.replications);
        assert_eq!(serial.summary.successes, parallel.summary.successes);
        assert_eq!(serial.summary.detections, parallel.summary.detections);
        assert_eq!(serial.summary.mean_tta, parallel.summary.mean_tta);
        assert_eq!(serial.summary.mean_ttsf, parallel.summary.mean_ttsf);
        assert_eq!(serial.summary.tta, parallel.summary.tta);
        assert_eq!(serial.summary.ttsf, parallel.summary.ttsf);
        assert_eq!(serial.summary.compromised, parallel.summary.compromised);
        assert_eq!(serial.batch_p_success, parallel.batch_p_success);
        assert_eq!(serial.batch_compromised, parallel.batch_compromised);
    }
}

/// Replication seeds depend only on `(master seed, namespace, index)` —
/// not on how many replications run, how they are batched, or which
/// executor runs them.
#[test]
fn seed_schedule_is_index_stable() {
    let short = ReplicationPlan::flat(5, 77);
    let long = ReplicationPlan::new(40, 25, 77);
    for i in 0..5 {
        assert_eq!(short.seed_for(i), long.seed_for(i));
    }
}

/// Campaign outcome streams agree across executors at the attack layer
/// too (the layer below `Measurements`).
#[test]
fn campaign_outcomes_match_across_executors() {
    force_worker_threads();
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let sim = CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
    let plan = ReplicationPlan::flat(30, 42);
    let serial = sim.run_plan(&plan, Executor::new(ExecMode::Serial));
    let parallel = sim.run_plan(&plan, Executor::new(ExecMode::Parallel));
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.time_to_attack, b.time_to_attack);
        assert_eq!(a.time_to_detection, b.time_to_detection);
        assert_eq!(a.deepest_stage, b.deepest_stage);
        assert_eq!(a.final_compromised_ratio(), b.final_compromised_ratio());
    }
}

/// A full pipeline run is reproducible end to end regardless of executor
/// mode: same design, same measurements, same ranking.
#[test]
fn pipeline_reports_match_across_executors() {
    force_worker_threads();
    let config = |executor| PipelineConfig {
        batches: 2,
        batch_size: 5,
        campaign: CampaignConfig {
            max_ticks: 24 * 7,
            detection_stops_attack: false,
        },
        executor,
        ..PipelineConfig::default()
    };
    let serial = Pipeline::new(config(Executor::serial())).run();
    let parallel = Pipeline::new(config(Executor::parallel())).run();
    for (a, b) in serial
        .doe
        .measurements
        .iter()
        .zip(&parallel.doe.measurements)
    {
        assert_eq!(a.batch_p_success, b.batch_p_success);
        assert_eq!(a.batch_compromised, b.batch_compromised);
    }
    for (x, y) in serial
        .assessment
        .ranking
        .iter()
        .zip(&parallel.assessment.ranking)
    {
        assert_eq!(x.0, y.0);
        assert_eq!(x.1.to_bits(), y.1.to_bits());
    }
}

/// Quick-scale end-to-end smoke test: every experiment in the suite
/// produces non-empty output without panicking.
#[test]
fn quick_scale_experiment_suite_runs() {
    let results = run_all(Scale::Quick);
    assert_eq!(results.len(), 10, "all ten experiments present");
    for (id, output) in &results {
        assert!(
            !output.trim().is_empty(),
            "experiment {id} produced no output"
        );
    }
    // The pipeline experiment must show all three steps.
    let (_, pipeline_out) = &results[2];
    for step in ["Step 1", "Step 2", "Step 3"] {
        assert!(pipeline_out.contains(step), "missing {step}");
    }
}
