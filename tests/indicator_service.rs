//! End-to-end tests of the sharded indicator service: wire-format
//! adversarial properties, chaos drills (worker faults must never change
//! merged indicators), cancel propagation, and a real TCP worker.

// Test code: the unwrap/expect ban (clippy.toml) applies to library code.
#![allow(clippy::disallowed_methods)]

use diversify::attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify::core::exec::{campaign_plan, MeasurementsCollector};
use diversify::core::runner::Measurements;
use diversify::scada::scope::{ScopeConfig, ScopeSystem};
use diversify::serve::channel::{loopback_pair, Channel, TcpChannel};
use diversify::serve::service::{IndicatorRequest, IndicatorService, ServiceOptions};
use diversify::serve::wire::{decode_message, decode_value, encode_message, encode_value};
use diversify::serve::worker::{run_worker, WorkerOptions};
use diversify_des::exec::{CancelToken, Executor, RetryPolicy};
use diversify_des::faults::{silence_injected_panics, FaultKind, FaultPlan};
use proptest::prelude::*;
use serde::{Number, Serialize, Value};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x5EED;
const BATCH_SIZE: u32 = 3;
const CAMPAIGN: CampaignConfig = CampaignConfig {
    max_ticks: 120,
    detection_stops_attack: false,
};

fn request(batches: u32) -> IndicatorRequest {
    IndicatorRequest::fixed(
        ScopeConfig::default(),
        ThreatModel::stuxnet_like(),
        CAMPAIGN,
        batches,
        BATCH_SIZE,
        SEED,
    )
}

fn reference(batches: u32) -> Measurements {
    let scope = ScopeConfig::default();
    let system = ScopeSystem::build(&scope);
    let sim = CampaignSimulator::new(system.network(), ThreatModel::stuxnet_like(), CAMPAIGN);
    let plan = campaign_plan(batches, BATCH_SIZE, SEED);
    Executor::default().run_ws(
        &plan,
        || sim.workspace(),
        |ws, rep| sim.run_into(ws, rep.seed),
        &MeasurementsCollector,
    )
}

fn assert_identical(merged: &Measurements, reference: &Measurements) {
    assert_eq!(
        merged.summary.to_json_value(),
        reference.summary.to_json_value()
    );
    assert_eq!(merged.batch_p_success, reference.batch_p_success);
    assert_eq!(merged.batch_compromised, reference.batch_compromised);
}

fn service_options() -> ServiceOptions {
    let mut options = ServiceOptions::default();
    options.sweep.backoff_base = Duration::from_millis(1);
    options.sweep.backoff_cap = Duration::from_millis(10);
    options
}

/// The release-suite round trip: an in-process service answers
/// bit-identically to a local unsharded run, and a repeat replays from
/// the memo store without executing anything.
#[test]
fn loopback_service_round_trip() {
    let service = IndicatorService::in_process(3, service_options());
    let response = service.request(&request(4));
    assert!(!response.degraded);
    assert!(response.target_met);
    assert_eq!(response.new_replications, 4 * BATCH_SIZE);
    assert_identical(response.measurements.as_ref().unwrap(), &reference(4));

    let replay = service.request(&request(4));
    assert!(replay.from_cache);
    assert_eq!(replay.new_replications, 0);
    assert_identical(
        replay.measurements.as_ref().unwrap(),
        response.measurements.as_ref().unwrap(),
    );
}

/// Chaos drill: one worker panics a replication, one worker's channel
/// drops mid-lease, one worker is merely slow. The coordinator retries
/// and re-deals until the sweep completes — and the merged indicators
/// are bit-identical to a fault-free local run, because shards carry
/// global seed schedules and the merge is a global-order left-fold.
#[test]
fn chaos_faults_leave_merged_indicators_bit_identical() {
    silence_injected_panics();
    let mut channels: Vec<Box<dyn Channel>> = Vec::new();
    let mut handles = Vec::new();

    // Worker 0: global replication 2 panics once (transient), and the
    // worker itself never retries — recovery is the coordinator's job.
    let replication_faults = Arc::new(
        FaultPlan::none(12)
            .with_fault(2, FaultKind::Panic)
            .transient(1),
    );
    let (coordinator_side, worker_side) = loopback_pair();
    let options = WorkerOptions {
        retry: RetryPolicy::none(),
        faults: Some(replication_faults),
        ..WorkerOptions::default()
    };
    handles.push(std::thread::spawn(move || {
        run_worker(worker_side, &options)
    }));
    channels.push(Box::new(coordinator_side));

    // Worker 1: its channel dies on its first send — a dropped worker
    // whose lease must be re-dealt elsewhere.
    let transport_faults = Arc::new(FaultPlan::none(1).with_fault(0, FaultKind::Panic));
    let (coordinator_side, worker_side) = loopback_pair();
    let worker_side = worker_side.with_send_faults(transport_faults);
    let options = WorkerOptions::default();
    handles.push(std::thread::spawn(move || {
        run_worker(worker_side, &options)
    }));
    channels.push(Box::new(coordinator_side));

    // Worker 2: healthy but slow on a couple of sends.
    let slow_faults = Arc::new(
        FaultPlan::none(4)
            .with_fault(1, FaultKind::Slow { micros: 2_000 })
            .with_fault(2, FaultKind::Slow { micros: 2_000 }),
    );
    let (coordinator_side, worker_side) = loopback_pair();
    let worker_side = worker_side.with_send_faults(slow_faults);
    let options = WorkerOptions::default();
    handles.push(std::thread::spawn(move || {
        run_worker(worker_side, &options)
    }));
    channels.push(Box::new(coordinator_side));

    let service = IndicatorService::with_channels(channels, service_options());
    let response = service.request(&request(4));
    assert!(!response.degraded, "health: {:?}", response.health);
    assert!(response.target_met);
    assert_identical(response.measurements.as_ref().unwrap(), &reference(4));
    assert!(service.live_workers() >= 1);

    drop(service);
    for handle in handles {
        handle.join().unwrap();
    }
}

/// A cancelled sweep stops instead of hanging: the response is typed as
/// cancelled, with no fabricated measurements.
#[test]
fn cancel_propagates_to_workers_and_degrades_typed() {
    let cancel = CancelToken::new();
    cancel.cancel();
    let mut options = service_options();
    options.sweep.cancel = Some(cancel);
    let service = IndicatorService::in_process(2, options);
    let response = service.request(&request(4));
    assert!(response.cancelled);
    assert!(!response.target_met);
    assert!(response.measurements.is_none());
}

/// A real TCP worker: the coordinator talks length-prefixed frames over
/// a localhost socket and the answer is still bit-identical.
#[test]
fn tcp_worker_round_trips_bit_identically() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let worker = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        run_worker(TcpChannel::new(stream), &WorkerOptions::default());
    });
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let service =
        IndicatorService::with_channels(vec![Box::new(TcpChannel::new(stream))], service_options());
    let response = service.request(&request(2));
    assert!(!response.degraded, "health: {:?}", response.health);
    assert_identical(response.measurements.as_ref().unwrap(), &reference(2));
    drop(service);
    worker.join().unwrap();
}

// --- Wire-format properties -------------------------------------------

/// A bounded-depth strategy over the full JSON value tree (the vendored
/// proptest has no `prop_recursive`; depth is bounded by construction).
/// Floats come from arbitrary bit patterns, so NaNs and infinities are
/// exercised too.
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..12)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII"))
}

fn arb_leaf() -> OneOf<Value> {
    prop_oneof![
        (0u8..1).prop_map(|_| Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(|u| Value::Number(Number::U(u))),
        any::<u64>().prop_map(|u| Value::Number(Number::I(u as i64))),
        any::<u64>().prop_map(|u| Value::Number(Number::F(f64::from_bits(u)))),
        arb_string().prop_map(Value::String),
    ]
}

fn arb_value(depth: u32) -> Box<dyn Strategy<Value = Value>> {
    if depth == 0 {
        return boxed(arb_leaf());
    }
    boxed(prop_oneof![
        arb_leaf(),
        prop::collection::vec(arb_value(depth - 1), 0..4).prop_map(Value::Array),
        prop::collection::vec((arb_string(), arb_value(depth - 1)), 0..4).prop_map(Value::Object),
    ])
}

/// Structural equality that treats NaN as equal to itself: the wire
/// encodes f64 bit patterns, so a NaN must survive the round trip even
/// though `PartialEq` says it differs from everything.
fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => number_eq(x, y),
        (Value::Array(xs), Value::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| value_eq(x, y))
        }
        (Value::Object(xs), Value::Object(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|((ka, va), (kb, vb))| ka == kb && value_eq(va, vb))
        }
        _ => a == b,
    }
}

/// Numeric identity across the wire's normalizations: floats compare by
/// bit pattern, and a non-negative signed integer equals its unsigned
/// form (the encoder emits both under the unsigned tag).
fn number_eq(a: &Number, b: &Number) -> bool {
    match (a, b) {
        (Number::F(x), Number::F(y)) => x.to_bits() == y.to_bits(),
        (Number::U(u), Number::I(i)) | (Number::I(i), Number::U(u)) => u64::try_from(*i) == Ok(*u),
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every value round-trips through the payload codec bit-exactly.
    #[test]
    fn wire_round_trips_every_value(value in arb_value(3)) {
        let bytes = encode_value(&value);
        let back = decode_value(&bytes).unwrap();
        prop_assert!(value_eq(&back, &value));
    }

    /// Every value round-trips through a full checksummed frame.
    #[test]
    fn framed_messages_round_trip(value in arb_value(2)) {
        let frame = encode_message(&value);
        let back: Value = decode_message(&frame).unwrap();
        prop_assert!(value_eq(&back, &value));
    }

    /// Flipping any single byte of a frame — header or payload — is
    /// detected: magic, length, and checksum checks leave no blind
    /// spot, and detection is a typed error, never a panic.
    #[test]
    fn any_single_byte_flip_is_rejected(value in arb_value(2), pos_seed in any::<usize>(), flip in 1u8..=255) {
        let mut frame = encode_message(&value);
        let pos = pos_seed % frame.len();
        frame[pos] ^= flip;
        prop_assert!(decode_message::<Value>(&frame).is_err());
    }

    /// Every strict prefix of a frame is rejected as a typed error.
    #[test]
    fn truncated_frames_are_rejected(value in arb_value(2), cut_seed in any::<usize>()) {
        let frame = encode_message(&value);
        let cut = cut_seed % frame.len();
        prop_assert!(decode_message::<Value>(&frame[..cut]).is_err());
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_message::<Value>(&bytes);
        let _ = decode_value(&bytes);
    }
}
