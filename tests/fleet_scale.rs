//! Release-mode smoke test for the fleet-scale campaign path.
//!
//! Builds a ~10^5-node plant family, runs a handful of bounded-horizon
//! campaign replications through the frontier engine, and — in release
//! builds only — guards the measured per-replication wall clock against
//! the figure recorded in `BENCH_5.json` (with a wide multiplier, so the
//! guard catches an accidental return to O(nodes)-per-tick behaviour,
//! not machine noise). Debug builds still exercise the whole path; they
//! just skip the timing assertion.

use diversify::attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify::scada::fleet::{FleetConfig, FleetSystem};
use std::time::Instant;

/// Pulls a single numeric field out of `BENCH_5.json` without a JSON
/// dependency: finds `"<key>":` and parses the number that follows.
fn bench_field(key: &str) -> f64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_5.json");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .unwrap_or_else(|| panic!("{path} has no field {key}"));
    let rest = text[at + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|e| panic!("field {key} in {path} is not a number: {e}"))
}

#[test]
fn hundred_thousand_node_fleet_campaign_smoke() {
    let config = FleetConfig::sized(100_000, 0x5CA1E);
    let fleet = FleetSystem::build(&config);
    let n = fleet.network().node_count();
    assert!(
        (85_000..=115_000).contains(&n),
        "sized(100_000) produced {n} nodes"
    );

    let campaign = CampaignConfig {
        max_ticks: 24 * 30,
        detection_stops_attack: false,
    };
    let sim = CampaignSimulator::new(fleet.network(), ThreatModel::stuxnet_like(), campaign);
    let mut ws = sim.workspace();

    // Warm pass sizes every buffer; it also pins down determinism.
    let first = sim.run_into(&mut ws, 1);
    assert_eq!(sim.run_into(&mut ws, 1), first, "same seed must replay");

    let reps = 5u64;
    let start = Instant::now();
    for seed in 0..reps {
        std::hint::black_box(sim.run_into(&mut ws, seed));
    }
    let per_rep_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

    if !cfg!(debug_assertions) {
        // BENCH_5.json records the frontier engine's measured
        // per-replication time at this scale; 25x headroom separates
        // "slower machine" from "the O(frontier) property regressed"
        // (the dense path is >100x at this size).
        let recorded = bench_field("frontier_1e5_per_rep_us");
        let ceiling = recorded * 25.0;
        assert!(
            per_rep_us <= ceiling,
            "1e5-node replication took {per_rep_us:.0} us; \
             recorded {recorded:.0} us, guard ceiling {ceiling:.0} us"
        );
    }
}
