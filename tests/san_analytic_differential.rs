//! Differential verification of the exact CTMC backend against the
//! Monte-Carlo simulator — the two backends share nothing but the model
//! and the reward specs, so agreement here is evidence neither has
//! drifted.
//!
//! * On randomized small all-exponential SANs, analytic transient values
//!   must fall inside the simulation's 99% confidence bands.
//! * On the r8 workload (a miniature campaign with infection spread, a
//!   detection race and an impairment goal), all four security
//!   indicators — P_attack, TTA, TTSF, compromised ratio — must agree.
//! * On the Sec. I machine chain, the analytic success probability must
//!   reproduce the paper's closed form (`P_M` vs `P_M1 × P_M2`) to
//!   analytic precision.
//! * Property tests pin the numerics: generator row consistency,
//!   uniformization weights summing to one, vanishing-state elimination
//!   preserving probability, and explorer invariance to activity
//!   declaration order.

// Test code: the unwrap/expect ban (clippy.toml) applies to the
// non-test library code of diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use diversify::attack::chain::{chain_success_probability, MachineChain};
use diversify::attack::to_san::{compile_machine_chain, compile_stage_chain, StageParams};
use diversify::san::{
    explore, poisson_weights, solve, ActivityTiming, ExploreOptions, FiringDistribution, Marking,
    Method, PlaceId, RewardSpec, SanBuilder, SanModel, TransientResult,
};
use diversify_des::{RngStream, SimTime, StreamId};
use proptest::prelude::*;

/// 99% normal quantile for the Monte-Carlo confidence bands.
const Z99: f64 = 2.576;

fn analytic(model: &SanModel, rewards: &[RewardSpec], horizon: f64) -> TransientResult {
    solve(
        model,
        rewards,
        Method::Analytic {
            horizon: SimTime::from_secs(horizon),
            tol: 1e-11,
            max_states: 50_000,
        },
    )
    .expect("test model is analytic-solvable")
}

fn simulated(
    model: &SanModel,
    rewards: &[RewardSpec],
    horizon: f64,
    reps: u32,
    seed: u64,
) -> TransientResult {
    diversify::san::TransientSolver::new(SimTime::from_secs(horizon), reps, seed)
        .solve(model, rewards)
}

/// Asserts the analytic value lies inside the simulation's 99% CI on the
/// mean (plus a small absolute floor for near-degenerate variances).
fn assert_mean_agrees(name: &str, exact: f64, mc: &diversify::san::solver::RewardEstimate) {
    let n = mc.stats.count() as f64;
    assert!(n > 0.0, "{name}: no Monte-Carlo observations");
    let half = Z99 * (mc.stats.sample_variance() / n).sqrt() + 1e-6 + 0.02 * exact.abs();
    assert!(
        (mc.stats.mean() - exact).abs() <= half,
        "{name}: simulated {} outside analytic band {exact} ± {half}",
        mc.stats.mean()
    );
}

/// Asserts the analytic probability lies inside the simulation's 99%
/// binomial band.
fn assert_probability_agrees(name: &str, exact: f64, observed: f64, reps: u32) {
    let half = Z99 * (exact * (1.0 - exact) / f64::from(reps)).sqrt() + 0.01;
    assert!(
        (observed - exact).abs() <= half,
        "{name}: simulated {observed} outside analytic band {exact} ± {half}"
    );
}

// ---------------------------------------------------------------------
// r8 workload: all four security indicators on a miniature campaign SAN.
// ---------------------------------------------------------------------

/// A hand-built miniature campaign, all-exponential: an entry node gets
/// infected, spreads to a PLC, the PLC is impaired (P_attack / TTA /
/// compromised ratio), while a detector races the intrusion (TTSF).
fn mini_campaign() -> (SanModel, [PlaceId; 4]) {
    let mut b = SanBuilder::new();
    let clean_entry = b.place("clean-entry", 1);
    let inf_entry = b.place("inf-entry", 0);
    let clean_plc = b.place("clean-plc", 1);
    let inf_plc = b.place("inf-plc", 0);
    let impaired = b.place("impaired", 0);
    let detected = b.place("detected", 0);
    b.timed_activity("seed", FiringDistribution::Exponential { rate: 0.8 })
        .input_arc(clean_entry, 1)
        .output_arc(inf_entry, 1)
        .build();
    b.timed_activity("hop", FiringDistribution::Exponential { rate: 0.5 })
        .input_arc(clean_plc, 1)
        .guard_reading(vec![inf_entry], move |m| m.tokens(inf_entry) > 0)
        .case(0.7, vec![(inf_plc, 1)])
        .case(0.3, vec![(clean_plc, 1)])
        .build();
    b.timed_activity("payload", FiringDistribution::Exponential { rate: 0.6 })
        .input_arc(inf_plc, 1)
        .output_arc(inf_plc, 1)
        .output_arc(impaired, 1)
        .guard_reading(vec![impaired], move |m| m.tokens(impaired) == 0)
        .build();
    b.timed_activity("detect", FiringDistribution::Exponential { rate: 0.15 })
        .guard_reading(vec![inf_entry, detected], move |m| {
            m.tokens(inf_entry) > 0 && m.tokens(detected) == 0
        })
        .output_arc(detected, 1)
        .build();
    let model = b.build().unwrap();
    (model, [inf_entry, inf_plc, impaired, detected])
}

#[test]
fn r8_all_four_indicators_agree() {
    let (model, [inf_entry, inf_plc, impaired, detected]) = mini_campaign();
    let horizon = 24.0;
    let rewards = [
        RewardSpec::first_passage("p_attack_tta", move |m| m.tokens(impaired) > 0),
        RewardSpec::first_passage("ttsf", move |m| m.tokens(detected) > 0),
        RewardSpec::rate("compromised", move |m| {
            f64::from(m.tokens(inf_entry).min(1) + m.tokens(inf_plc).min(1)) / 2.0
        }),
    ];
    let reps = 4_000;
    let exact = analytic(&model, &rewards, horizon);
    let mc = simulated(&model, &rewards, horizon, reps, 0xD5_2013);

    // Indicator 1: P_attack.
    let e_attack = exact.estimate("p_attack_tta").unwrap();
    let m_attack = mc.estimate("p_attack_tta").unwrap();
    assert_probability_agrees(
        "P_attack",
        e_attack.probability(0),
        m_attack.probability(reps),
        reps,
    );
    // Indicator 2: TTA (conditional on success within the window).
    assert_mean_agrees("TTA", e_attack.stats.mean(), m_attack);
    // Indicator 3: TTSF.
    let e_ttsf = exact.estimate("ttsf").unwrap();
    let m_ttsf = mc.estimate("ttsf").unwrap();
    assert_probability_agrees(
        "P_detect",
        e_ttsf.probability(0),
        m_ttsf.probability(reps),
        reps,
    );
    assert_mean_agrees("TTSF", e_ttsf.stats.mean(), m_ttsf);
    // Indicator 4: compromised ratio (time-averaged).
    let e_ratio = exact.estimate("compromised").unwrap();
    let m_ratio = mc.estimate("compromised").unwrap();
    assert_mean_agrees("compromised ratio", e_ratio.stats.mean(), m_ratio);
}

#[test]
fn stage_chain_indicators_agree() {
    let params = vec![
        StageParams {
            success_probability: 0.4,
            attempt_rate_per_hour: 1.5,
        };
        4
    ];
    let model = compile_stage_chain(&params).unwrap();
    let success = diversify::attack::to_san::success_place(&model);
    let attempt0 = model.activity_by_name("attempt-0").unwrap();
    let rewards = [
        RewardSpec::first_passage("tta", move |m| m.tokens(success) == 1),
        RewardSpec::impulse("attempts-0", attempt0),
    ];
    let horizon = 12.0;
    let reps = 4_000;
    let exact = analytic(&model, &rewards, horizon);
    let mc = simulated(&model, &rewards, horizon, reps, 0xBEEF);
    let e_tta = exact.estimate("tta").unwrap();
    let m_tta = mc.estimate("tta").unwrap();
    assert_probability_agrees(
        "P(win)",
        e_tta.probability(0),
        m_tta.probability(reps),
        reps,
    );
    assert_mean_agrees("TTA", e_tta.stats.mean(), m_tta);
    assert_mean_agrees(
        "first-stage attempts",
        exact.estimate("attempts-0").unwrap().stats.mean(),
        mc.estimate("attempts-0").unwrap(),
    );
}

// ---------------------------------------------------------------------
// Machine chain: closed form asserted to analytic precision.
// ---------------------------------------------------------------------

#[test]
fn machine_chain_closed_form_to_analytic_precision() {
    // The paper's Sec. I comparison: identical machines cost one exploit
    // (P_M), diverse machines multiply (P_M1 × P_M2).
    for chain in [
        MachineChain::identical(2, 0.3),
        MachineChain::diverse(2, 0.3),
        MachineChain::identical(5, 0.7),
        MachineChain::diverse(5, 0.7),
        MachineChain::new(vec![(0, 0.8), (1, 0.25), (0, 0.9), (2, 0.5)]),
    ] {
        let expect = chain_success_probability(&chain);
        let san = compile_machine_chain(&chain, 1.0).unwrap();
        let win = san.success;
        let r = analytic(
            &san.model,
            &[RewardSpec::first_passage("win", move |m| {
                m.tokens(win) == 1
            })],
            200.0 * chain.len() as f64,
        );
        let got = r.estimate("win").unwrap().probability(0);
        assert!(
            (got - expect).abs() < 1e-9,
            "chain {chain:?}: analytic {got} vs closed form {expect}"
        );
    }
}

// ---------------------------------------------------------------------
// Randomized small exponential SANs.
// ---------------------------------------------------------------------

/// One randomized activity, held as data so the same model can be built
/// with any declaration order (the order-invariance property needs the
/// permuted twin of a model, not a fresh draw).
enum SpecAct {
    Instant {
        src: usize,
        dst: usize,
    },
    Timed {
        src: usize,
        rate: f64,
        guard: Option<(usize, u32)>,
        cases: Vec<(f64, usize)>,
    },
}

/// Draws a random token-conserving all-exponential SAN spec: every
/// activity moves exactly one token, so the reachable state space is
/// finite. Instantaneous activities route strictly "upward" so cascades
/// terminate.
fn random_spec(model_seed: u64) -> (Vec<u32>, Vec<SpecAct>) {
    let mut rng = RngStream::new(model_seed, StreamId(0xA2A));
    let np = 3 + rng.index(3);
    let initial: Vec<u32> = (0..np).map(|_| 1 + rng.index(2) as u32).collect();
    let na = 3 + rng.index(5);
    let mut acts = Vec::with_capacity(na);
    for _ in 0..na {
        if rng.bernoulli(0.25) {
            let src = rng.index(np - 1);
            let dst = src + 1 + rng.index(np - src - 1);
            acts.push(SpecAct::Instant { src, dst });
            continue;
        }
        let src = rng.index(np);
        let rate = 0.3 + rng.uniform() * 2.0;
        let guard = rng
            .bernoulli(0.3)
            .then(|| (rng.index(np), 1 + rng.index(4) as u32));
        let cases = if rng.bernoulli(0.4) {
            vec![
                (0.2 + rng.uniform(), rng.index(np)),
                (0.2 + rng.uniform(), rng.index(np)),
            ]
        } else {
            vec![(1.0, rng.index(np))]
        };
        acts.push(SpecAct::Timed {
            src,
            rate,
            guard,
            cases,
        });
    }
    (initial, acts)
}

/// Materializes a spec, declaring activities in the given index order.
/// Activity names track the spec index, so the same activity keeps its
/// name under permutation.
fn build_from_spec(initial: &[u32], acts: &[SpecAct], order: &[usize]) -> SanModel {
    let mut b = SanBuilder::new();
    let places: Vec<PlaceId> = initial
        .iter()
        .enumerate()
        .map(|(i, &t)| b.place(format!("p{i}"), t))
        .collect();
    for &ai in order {
        match &acts[ai] {
            SpecAct::Instant { src, dst } => {
                b.instantaneous_activity(format!("i{ai}"))
                    .input_arc(places[*src], 1)
                    .output_arc(places[*dst], 1)
                    .build();
            }
            SpecAct::Timed {
                src,
                rate,
                guard,
                cases,
            } => {
                let mut ab = b
                    .timed_activity(
                        format!("t{ai}"),
                        FiringDistribution::Exponential { rate: *rate },
                    )
                    .input_arc(places[*src], 1);
                if let Some((gp, lim)) = *guard {
                    let gpid = places[gp];
                    ab = ab.guard_reading(vec![gpid], move |m| m.tokens(gpid) <= lim);
                }
                for &(w, dst) in cases {
                    ab = ab.case(w, vec![(places[dst], 1)]);
                }
                ab.build();
            }
        }
    }
    b.build().expect("randomized model is structurally valid")
}

fn random_exponential_model(model_seed: u64) -> SanModel {
    let (initial, acts) = random_spec(model_seed);
    let order: Vec<usize> = (0..acts.len()).collect();
    build_from_spec(&initial, &acts, &order)
}

fn reversed_activity_model(model_seed: u64) -> SanModel {
    let (initial, acts) = random_spec(model_seed);
    let order: Vec<usize> = (0..acts.len()).rev().collect();
    build_from_spec(&initial, &acts, &order)
}

#[test]
fn randomized_sans_simulation_inside_analytic_bands() {
    let horizon = 8.0;
    let reps = 2_000;
    for model_seed in 0..12u64 {
        let model = random_exponential_model(model_seed);
        let p0 = model.place_by_name("p0").unwrap();
        let rewards = [
            RewardSpec::rate("occupancy", move |m| f64::from(m.tokens(p0))),
            RewardSpec::first_passage("drained", move |m| m.tokens(p0) == 0),
        ];
        let exact = analytic(&model, &rewards, horizon);
        let mc = simulated(&model, &rewards, horizon, reps, model_seed ^ 0xC0FFEE);

        assert_mean_agrees(
            &format!("occupancy (model {model_seed})"),
            exact.estimate("occupancy").unwrap().stats.mean(),
            mc.estimate("occupancy").unwrap(),
        );
        let e_fp = exact.estimate("drained").unwrap();
        let m_fp = mc.estimate("drained").unwrap();
        assert_probability_agrees(
            &format!("P(drained) (model {model_seed})"),
            e_fp.probability(0),
            m_fp.probability(reps),
            reps,
        );
        if e_fp.probability(0) > 0.05 && e_fp.stats.count() > 0 {
            assert_mean_agrees(
                &format!("T(drained) (model {model_seed})"),
                e_fp.stats.mean(),
                m_fp,
            );
        }
    }
}

// ---------------------------------------------------------------------
// Steady state: both iteration schemes vs the long-run simulation.
// ---------------------------------------------------------------------

#[test]
fn steady_state_matches_long_run_simulation() {
    // Cyclic three-queue model: ergodic, known to mix quickly.
    let mut b = SanBuilder::new();
    let q0 = b.place("q0", 3);
    let q1 = b.place("q1", 0);
    let q2 = b.place("q2", 0);
    for (name, from, to, rate) in [
        ("m01", q0, q1, 1.0),
        ("m12", q1, q2, 1.5),
        ("m20", q2, q0, 2.0),
    ] {
        b.timed_activity(name, FiringDistribution::Exponential { rate })
            .input_arc(from, 1)
            .output_arc(to, 1)
            .build();
    }
    let model = b.build().unwrap();
    let solver = diversify::san::AnalyticSolver::new(SimTime::from_secs(1.0), 1e-10);
    let est = solver
        .steady_state(
            &model,
            &[RewardSpec::rate("q0", move |m| f64::from(m.tokens(q0)))],
        )
        .unwrap();
    let stationary_q0 = est[0].stats.mean();
    // Long transient window approximates the stationary time average.
    let rewards = [RewardSpec::rate("q0", move |m| f64::from(m.tokens(q0)))];
    let exact_long = analytic(&model, &rewards, 2_000.0);
    assert!(
        (exact_long.estimate("q0").unwrap().stats.mean() - stationary_q0).abs() < 1e-3,
        "transient long-run {} vs stationary {stationary_q0}",
        exact_long.estimate("q0").unwrap().stats.mean()
    );
    let mc = simulated(&model, &rewards, 500.0, 60, 7);
    assert_mean_agrees("stationary q0", stationary_q0, mc.estimate("q0").unwrap());
}

// ---------------------------------------------------------------------
// Property tests for the numerics.
// ---------------------------------------------------------------------

/// Total exponential rate enabled in `marking` — an independent path to
/// the generator row sum.
fn enabled_rate_sum(model: &SanModel, marking: &Marking) -> f64 {
    model
        .activity_ids()
        .filter(|&id| model.is_enabled(id, marking))
        .filter_map(|id| match model.activity(id).timing {
            ActivityTiming::Timed(FiringDistribution::Exponential { rate }) => Some(rate),
            _ => None,
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generator rows sum to zero: for every tangible state, the
    /// off-diagonal row sum plus the self-loop jump rate reconstructs the
    /// total exponential rate enabled in the state (the diagonal is
    /// `-exit_rate` by construction, so this is the row-sum identity
    /// checked through an independent code path).
    #[test]
    fn prop_generator_rows_sum_to_zero(model_seed in any::<u64>()) {
        let model = random_exponential_model(model_seed);
        let space = explore(&model, &[], ExploreOptions::default()).unwrap();
        for s in 0..space.state_count() {
            let row_sum: f64 = space.transitions(s).map(|(_, r)| r).sum();
            prop_assert!((row_sum - space.exit_rate(s)).abs() < 1e-9);
            let total = space.exit_rate(s) + space.self_loop_rate(s);
            let expect = enabled_rate_sum(&model, space.state(s));
            prop_assert!(
                (total - expect).abs() < 1e-9,
                "state {}: generator total {} vs enabled rate {}", s, total, expect
            );
        }
    }

    /// Uniformization step distributions sum to 1 within tolerance, for
    /// means spanning eight orders of magnitude.
    #[test]
    fn prop_poisson_weights_sum_to_one(mantissa in 1u64..10_000, exp in 0i32..5) {
        let lambda_t = mantissa as f64 * 10f64.powi(exp - 2);
        let tol = 1e-9;
        let w = poisson_weights(lambda_t, tol);
        let total: f64 = w.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < tol + 1e-12, "λt={}: Σ={}", lambda_t, total);
    }

    /// Vanishing-state elimination preserves probability: the initial
    /// distribution sums to 1 and no tangible state enables an
    /// instantaneous activity.
    #[test]
    fn prop_vanishing_elimination_preserves_probability(model_seed in any::<u64>()) {
        let model = random_exponential_model(model_seed);
        let space = explore(&model, &[], ExploreOptions::default()).unwrap();
        let initial_mass: f64 = space.initial().iter().map(|&(_, p)| p).sum();
        prop_assert!((initial_mass - 1.0).abs() < 1e-12);
        for s in 0..space.state_count() {
            for id in model.activity_ids() {
                if model.activity(id).is_instantaneous() {
                    prop_assert!(
                        !model.is_enabled(id, space.state(s)),
                        "state {} is vanishing", s
                    );
                }
            }
        }
    }

    /// The explorer is invariant to activity declaration order: reversing
    /// the declarations changes state indices but neither the state count
    /// nor any reward value.
    #[test]
    fn prop_explorer_invariant_to_activity_order(model_seed in any::<u64>()) {
        let forward = random_exponential_model(model_seed);
        let reversed = reversed_activity_model(model_seed);
        let horizon = 5.0;
        let p0f = forward.place_by_name("p0").unwrap();
        let p0r = reversed.place_by_name("p0").unwrap();
        let rf = analytic(&forward, &[
            RewardSpec::rate("occ", move |m| f64::from(m.tokens(p0f))),
            RewardSpec::first_passage("hit", move |m| m.tokens(p0f) == 0),
        ], horizon);
        let rr = analytic(&reversed, &[
            RewardSpec::rate("occ", move |m| f64::from(m.tokens(p0r))),
            RewardSpec::first_passage("hit", move |m| m.tokens(p0r) == 0),
        ], horizon);
        let sf = explore(&forward, &[], ExploreOptions::default()).unwrap();
        let sr = explore(&reversed, &[], ExploreOptions::default()).unwrap();
        prop_assert_eq!(sf.state_count(), sr.state_count());
        let (a, b) = (
            rf.estimate("occ").unwrap().stats.mean(),
            rr.estimate("occ").unwrap().stats.mean(),
        );
        prop_assert!((a - b).abs() < 1e-9, "occ {} vs {}", a, b);
        let (pa, pb) = (
            rf.estimate("hit").unwrap().probability(0),
            rr.estimate("hit").unwrap().probability(0),
        );
        prop_assert!((pa - pb).abs() < 1e-9, "hit {} vs {}", pa, pb);
    }
}
