//! Differential oracle for the batched lockstep replication path.
//!
//! The PR 9 tentpole added a K-lane lockstep executor path: a batch of
//! campaign replications advances one tick at a time over lane-major
//! SoA state, with per-node probability tables filled once per batch.
//! The scalar `run_into` path is the semantic oracle: for every
//! network, threat model, seed and batch width, each lockstep lane
//! must be **bit-identical** to the scalar run of its seed — same
//! stats, same per-tick ratio curve. This suite checks that over the
//! hand-built SCoPE network, randomized generated fleets (property
//! test), the `run_ws_lockstep` executor seam (serial ≡ parallel ≡
//! scalar, including remainder lanes), and the multilevel-splitting
//! estimator routed through the lockstep path.

// Tests may unwrap/expect: a panic is the failure signal.
#![allow(clippy::disallowed_methods)]

use diversify::attack::campaign::{
    CampaignBatchTask, CampaignConfig, CampaignSimulator, CampaignStats, ThreatModel,
    CAMPAIGN_RUN_NAMESPACE,
};
use diversify::attack::split::CampaignSplitTask;
use diversify::des::exec::{Executor, ReplicationPlan, VecCollector};
use diversify::scada::fleet::{FleetConfig, FleetSystem};
use diversify::scada::network::ScadaNetwork;
use diversify::scada::scope::{ScopeConfig, ScopeSystem};
use diversify_des::splitting::Splitting;
use proptest::prelude::*;

fn scope_network() -> ScadaNetwork {
    ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone()
}

fn threat_for(kind: u8) -> ThreatModel {
    match kind % 3 {
        0 => ThreatModel::stuxnet_like(),
        1 => ThreatModel::duqu_like(),
        _ => ThreatModel::flame_like(),
    }
}

/// Asserts every lockstep lane ≡ its scalar replication for one
/// (network, threat, config) triple: `seeds` runs as one batch of
/// width `seeds.len()`, and each lane's stats and ratio curve must be
/// bit-identical to the scalar `run_into` of the same seed.
fn assert_lanes_match_scalar(
    net: &ScadaNetwork,
    threat: ThreatModel,
    config: CampaignConfig,
    seeds: &[u64],
) {
    let sim = CampaignSimulator::new(net, threat, config);
    let mut batched = sim.batched_workspace();
    let stats = sim.run_batch_into(&mut batched, seeds).to_vec();
    assert_eq!(stats.len(), seeds.len());

    let mut scalar_ws = sim.workspace();
    for (lane, &seed) in seeds.iter().enumerate() {
        let scalar = sim.run_into(&mut scalar_ws, seed);
        assert_eq!(
            stats[lane], scalar,
            "stats diverge at lane {lane} seed {seed}"
        );
        assert_eq!(
            batched.lane(lane).ratio_curve(),
            scalar_ws.ratio_curve(),
            "ratio curve diverges at lane {lane} seed {seed}"
        );
    }
}

#[test]
fn lockstep_lanes_match_scalar_on_scope_network() {
    let net = scope_network();
    let seeds: Vec<u64> = (0..24).map(|i| 0xD15C_u64.wrapping_mul(i + 1)).collect();
    for threat in [
        ThreatModel::stuxnet_like(),
        ThreatModel::duqu_like(),
        ThreatModel::flame_like(),
    ] {
        // Full batch, a narrow batch, and a single-lane batch.
        assert_lanes_match_scalar(&net, threat.clone(), CampaignConfig::default(), &seeds);
        assert_lanes_match_scalar(&net, threat.clone(), CampaignConfig::default(), &seeds[..5]);
        assert_lanes_match_scalar(&net, threat, CampaignConfig::default(), &seeds[..1]);
    }
}

#[test]
fn lockstep_executor_is_invariant_across_modes_and_widths() {
    let net = scope_network();
    let sim = CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
    // 3 batches of 17 replications: every width below except 1 and 17
    // leaves a remainder group that must degrade to the scalar path.
    let plan = ReplicationPlan::new(3, 17, 0x10C5).with_namespace(CAMPAIGN_RUN_NAMESPACE);
    let scalar: Vec<CampaignStats> = Executor::serial().run_ws(
        &plan,
        || sim.workspace(),
        |ws, rep| sim.run_into(ws, rep.seed),
        &VecCollector,
    );
    let task = CampaignBatchTask::new(&sim);
    for lanes in [1usize, 2, 4, 8, 16, 17, 32] {
        for executor in [Executor::serial(), Executor::parallel()] {
            let lockstep: Vec<CampaignStats> =
                executor.run_ws_lockstep(&plan, &task, lanes, &VecCollector);
            assert_eq!(
                lockstep, scalar,
                "diverged at {lanes} lanes on {executor:?}"
            );
        }
    }
}

#[test]
fn splitting_via_lockstep_matches_scalar_levels() {
    let net = scope_network();
    let config = CampaignConfig {
        max_ticks: 48,
        detection_stops_attack: true,
    };
    let sim = CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), config);
    let task = CampaignSplitTask::with_default_milestones(&sim);
    let scalar = Splitting::try_new(200, 0x5EED)
        .expect("positive population")
        .run(&task, &Executor::serial())
        .expect("splitting run succeeds");
    for lanes in [7usize, 64] {
        for executor in [Executor::serial(), Executor::parallel()] {
            let lockstep = Splitting::try_new(200, 0x5EED)
                .expect("positive population")
                .with_lockstep(lanes)
                .run(&task, &executor)
                .expect("splitting run succeeds");
            assert_eq!(
                scalar.estimate.to_bits(),
                lockstep.estimate.to_bits(),
                "estimate diverged at {lanes} lanes on {executor:?}"
            );
            assert_eq!(scalar.levels, lockstep.levels);
            assert_eq!(scalar.total_ticks, lockstep.total_ticks);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Lockstep ≡ scalar per lane on randomized plant families: fleet
    /// shape, threat model, batch width (1..=12, so single-lane and
    /// wide batches both occur) and the seed schedule all vary.
    #[test]
    fn lockstep_lanes_match_scalar_on_random_fleets(
        plants in 1usize..4,
        substations in 1usize..6,
        plcs in 1usize..6,
        offices in 1usize..4,
        fleet_seed in any::<u64>(),
        threat_kind in 0u8..3,
        seed_base in any::<u64>(),
        width in 1usize..13,
        detection_stops_attack in any::<bool>(),
    ) {
        let config = FleetConfig {
            plants,
            substations_per_plant: substations,
            plcs_per_substation: plcs,
            offices_per_plant: offices,
            seed: fleet_seed,
            ..FleetConfig::default()
        };
        let fleet = FleetSystem::build(&config);
        let campaign = CampaignConfig {
            max_ticks: 24 * 10,
            detection_stops_attack,
        };
        let seeds: Vec<u64> = (0..width as u64)
            .map(|i| seed_base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        assert_lanes_match_scalar(
            fleet.network(),
            threat_for(threat_kind),
            campaign,
            &seeds,
        );
    }
}
